#pragma once
// Simulated-memory allocator in the style of STAMP's thread-local memory
// manager: per-thread segregated free lists refilled in chunks from a global
// bump region, so parallel allocation needs no synchronization.
//
// Two properties matter for the paper's experiments:
//   * Lazily-faulted pages: freshly obtained chunks are NOT present; the
//     first touch faults — and a fault inside a hardware transaction aborts
//     it (misc3). This is the vacation §V-B pathology.
//   * `prefault_on_refill`: the optimized allocator touches chunk pages when
//     the pool grows (simulated non-tx stores), eliminating in-tx faults.
//
// Placement is a first-class policy axis (Dice/Harris/Kogan/Lev, "The
// Influence of Malloc Placement on TSX HTM": allocator placement alone
// swings abort rates via index conflicts in the L1 write set):
//   * kSizeClass — segregated power-of-two classes with LIFO reuse; the
//     byte-identical historical default.
//   * kBumpPerThread — sequential per-thread carving, no reuse: every
//     allocation is fresh address space, so hot blocks never alias recently
//     freed ones.
//   * kPadded — classes rounded up to whole cache lines; blocks smaller
//     than a line get their own line, killing allocator-induced false
//     sharing between neighbouring nodes.
//   * kColored — line-granular, L1-set-aware placement. With
//     `color_sets == 0` blocks spread across all sets (each refill's carve
//     is rotated so class pools don't all lead with the chunk-base set);
//     with `color_sets == k` every block starts on one of the first k sets,
//     deliberately packing the write set into few sets to provoke
//     associativity/capacity (MISC2) aborts.
//
// Transactional scopes: allocations made inside a speculative attempt are
// registered and released again if the attempt aborts; frees are deferred to
// commit (an aborted attempt must not release memory the old state uses).
// A double free() of one address within an open scope is a programming
// error and is detected at free() time, before any simulated cost is
// charged.

#include <array>
#include <cstdint>
#include <vector>

#include "mem/layout.h"
#include "sim/machine.h"
#include "sim/types.h"
#include "util/arena.h"
#include "util/flat_table.h"

namespace tsx::mem {

using sim::Addr;
using sim::CtxId;
using sim::Machine;

enum class PlacementPolicy : uint8_t {
  kSizeClass = 0,   // segregated power-of-two classes, LIFO reuse (default)
  kBumpPerThread,   // sequential per-thread carving, no reuse
  kPadded,          // classes rounded up to whole cache lines
  kColored,         // line-granular, L1-set-aware (spread or pack)
};

const char* placement_policy_name(PlacementPolicy p);

struct HeapConfig {
  bool prefault_on_refill = false;
  uint64_t chunk_bytes = 64 * 1024;
  sim::Cycles alloc_cycles = 28;  // malloc fast-path cost
  sim::Cycles free_cycles = 20;
  sim::Cycles touch_page_cycles = 900;  // pre-touch cost per page on refill
  PlacementPolicy policy = PlacementPolicy::kSizeClass;
  // kColored only: number of distinct L1 sets placement may use, counted
  // from set 0. 0 = spread over all sets; values >= the L1 set count are
  // clamped to spread.
  uint32_t color_sets = 0;
};

struct HeapStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t refills = 0;
  uint64_t bytes_live = 0;
  uint64_t bytes_peak = 0;
  // Extra bytes the placement policy added on top of the power-of-two size
  // class (padding to cache lines under kPadded/kColored).
  uint64_t bytes_padding = 0;
  // Cumulative block placements per L1 set index (of the block's first
  // line), sized to the machine's L1 set count. Covers alloc() and
  // host_alloc(): the set-occupancy histogram of everything the app's data
  // structures live in.
  std::vector<uint64_t> set_allocs;
};

class SimHeap {
 public:
  SimHeap(Machine& m, HeapConfig cfg = {});

  // Allocates from the calling context's pool. Must be called from a fiber.
  // `align` must be a power of two >= 8.
  Addr alloc(uint64_t bytes, uint64_t align = 8);
  void free(Addr addr);

  // Host-side allocation for setup code running outside the simulation
  // (no cost, pages prefaulted). Freeable with free() only from a fiber.
  Addr host_alloc(uint64_t bytes, uint64_t align = 8);

  // Transactional scopes (wired into the RTM/STM executors per context).
  void tx_scope_begin(CtxId ctx);
  void tx_scope_commit(CtxId ctx);
  void tx_scope_abort(CtxId ctx);

  const HeapStats& stats() const { return stats_; }
  const HeapConfig& config() const { return cfg_; }

  // Testing: size of the block owning `addr`, 0 if unknown.
  uint64_t block_size(Addr addr) const;

 private:
  // LIFO free list in arena-backed chunks: no per-node allocation, and the
  // chunk links are recycled (a drained chunk stays linked via `next` for
  // the next push wave), so steady-state alloc/free churn touches no
  // allocator at all. Refills push block addresses DESCENDING so pops hand
  // blocks out in ascending address order — the exact sequence the previous
  // vector-based list (push ascending, reverse, pop_back) produced.
  class FreeStack {
   public:
    bool empty() const { return size_ == 0; }
    void push(util::Arena& arena, Addr v) {
      if (!top_) {
        top_ = new_chunk(arena, nullptr);
      } else if (top_->count == kSlots) {
        top_ = top_->next ? top_->next : new_chunk(arena, top_);
      }
      top_->slots[top_->count++] = v;
      ++size_;
    }
    Addr pop() {
      if (top_->count == 0) top_ = top_->prev;
      --size_;
      return top_->slots[--top_->count];
    }

   private:
    static constexpr uint32_t kSlots = 64;
    struct Chunk {
      Chunk* prev = nullptr;
      Chunk* next = nullptr;
      uint32_t count = 0;
      Addr slots[kSlots];
    };
    static Chunk* new_chunk(util::Arena& arena, Chunk* prev) {
      Chunk* c = arena.create<Chunk>();
      c->prev = prev;
      if (prev) prev->next = c;
      return c;
    }

    Chunk* top_ = nullptr;
    uint64_t size_ = 0;
  };

  struct PerCtx {
    // size-class -> free addresses
    util::FlatTable<FreeStack> free_lists;
    // kBumpPerThread: the context's current sequential run.
    Addr bump_cur = 0;
    Addr bump_end = 0;
    bool scope_open = false;
    std::vector<Addr> scope_allocs;
    std::vector<Addr> scope_frees;
  };

  struct Block {
    uint64_t csize = 0;
    PerCtx* owner = nullptr;
  };

  uint64_t size_class(uint64_t bytes) const;
  // Carves `chunk` bytes from the global bump region, with the base rounded
  // up to `align` (power of two). Counts a refill and services the
  // prefault-on-refill policy.
  Addr carve_chunk(uint64_t chunk, uint64_t align, bool simulate_cost);
  void refill(FreeStack& fl, uint64_t csize, bool simulate_cost);
  Addr take_from_pool(PerCtx& pc, uint64_t csize, bool simulate_cost);
  void release(Addr addr);
  void count_placement(Addr addr);

  Machine& m_;
  HeapConfig cfg_;
  Addr bump_;
  uint32_t l1_sets_;      // L1 set count (coloring geometry), >= 1
  uint64_t color_rot_ = 0;  // kColored spread: per-refill carve rotation
  util::Arena arena_;  // FreeStack chunk storage (lives as long as the heap)
  std::array<PerCtx, sim::kMaxCtxs> per_ctx_;
  PerCtx host_ctx_;
  // addr -> owning block metadata (flat: the directory is probed on every
  // free and block_size query).
  util::FlatTable<Block> blocks_;
  HeapStats stats_;
};

}  // namespace tsx::mem
