#pragma once
// ssca2 (STAMP): kernel 1 of the SSCA#2 graph benchmark — parallel
// construction of a directed multigraph's adjacency structure. Paper
// characteristics: very short transactions, tiny read/write sets, low
// contention, large total working set; scales well everywhere, RTM slightly
// ahead on both time and energy.

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct Ssca2Config {
  uint32_t vertices = 8192;
  uint32_t edges = 32768;
  uint32_t max_degree = 32;  // adjacency array capacity per vertex
  uint64_t seed = 2;
};

AppResult run_ssca2(const core::RunConfig& run_cfg, const Ssca2Config& app);

}  // namespace tsx::stamp
