#pragma once
// intruder (STAMP): network intrusion detection. Packets arrive in a shared
// queue; the reassembly transaction (the paper's TID1) inserts each fragment
// into its flow's list inside a red-black tree of incomplete flows; complete
// flows are removed and scanned against attack signatures outside the
// transaction.
//
// The `optimized` flag applies the paper's §V-A changes: fragments are
// PREPENDED to the flow list in O(1) instead of sorted-inserted in O(n)
// (sorting happens once, non-transactionally, at reassembly time), cutting
// both the transactional read-set and the transaction duration roughly in
// half.

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct IntruderConfig {
  uint32_t flows = 256;
  uint32_t max_fragments = 12;  // fragments per flow in [1, max]
  uint32_t attack_fraction_pct = 10;
  bool optimized = false;       // §V-A code changes
  uint64_t seed = 4;
};

// Site ids used for per-transaction statistics (Table IV's TID1 = 1).
inline constexpr uint32_t kIntruderSiteReassembly = 1;
inline constexpr uint32_t kIntruderSiteQueue = 2;

AppResult run_intruder(const core::RunConfig& run_cfg,
                       const IntruderConfig& app);

}  // namespace tsx::stamp
