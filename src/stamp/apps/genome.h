#pragma once
// genome (STAMP): gene sequencing by segment de-duplication and assembly.
// Phase 1 inserts a duplicated segment stream into a shared hash set
// (transactions of medium length over bucket chains, low contention);
// phase 2 assembles the unique segments into an ordered structure (a shared
// red-black tree keyed by segment start). Paper characteristics: medium
// transaction length, medium working set, low contention — RTM and TinySTM
// roughly tie up to 4 threads, TinySTM keeps scaling at 8.

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct GenomeConfig {
  uint32_t gene_length = 2048;      // unique segment starts 0..G-1
  uint32_t duplication_factor = 3;  // stream length = G * factor (shuffled)
  uint32_t hash_buckets = 512;      // power of two
  uint64_t seed = 6;
};

AppResult run_genome(const core::RunConfig& run_cfg, const GenomeConfig& app);

}  // namespace tsx::stamp
