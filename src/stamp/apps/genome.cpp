#include "stamp/apps/genome.h"

#include <vector>

#include "sim/rng.h"
#include "stamp/lib/hashtable.h"
#include "stamp/lib/rbtree.h"

namespace tsx::stamp {

AppResult run_genome(const core::RunConfig& run_cfg, const GenomeConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& m = rt.machine();
  uint32_t n = run_cfg.threads;
  const uint64_t G = app.gene_length;

  // Host setup: a shuffled stream of segment starts, each appearing
  // `duplication_factor` times (every segment is guaranteed present, as in
  // STAMP's generated inputs).
  sim::Rng rng(app.seed);
  std::vector<uint64_t> stream;
  stream.reserve(G * app.duplication_factor);
  for (uint32_t d = 0; d < app.duplication_factor; ++d) {
    for (uint64_t s = 0; s < G; ++s) stream.push_back(s);
  }
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }

  HashTable unique = HashTable::create_host(rt, app.hash_buckets);
  RbTree assembled = RbTree::create_host(rt);

  rt.run([&](core::TxCtx& ctx) {
    uint32_t t = ctx.id();

    measured_region_begin(ctx);

    // ---- Phase 1: de-duplication ----
    uint64_t lo = stream.size() * t / n;
    uint64_t hi = stream.size() * (t + 1) / n;
    for (uint64_t i = lo; i < hi; ++i) {
      uint64_t seg = stream[i];
      ctx.transaction([&] { unique.insert(ctx, seg + 1, seg); }, /*site=*/1);
      ctx.compute(60);  // segment parsing outside the transaction
    }
    ctx.barrier();

    // ---- Phase 2: assembly ----
    // Buckets are read-only now; each thread walks its share of chains
    // non-transactionally and inserts the segments into the shared tree.
    sim::Word nb = unique.bucket_count(ctx);
    for (sim::Word b = t; b < nb; b += n) {
      sim::Addr cur = unique.bucket_head(ctx, b);
      while (cur != 0) {
        sim::Word key = unique.node_key(ctx, cur);
        ctx.transaction([&] { assembled.insert(ctx, key, key - 1); },
                        /*site=*/2);
        cur = unique.node_next(ctx, cur);
      }
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = stream.size();

  // Validation: the assembled tree is exactly 1..G in order.
  if (unique.host_items(rt).size() != G) {
    res.validation_message = "dedup size != gene length";
    return res;
  }
  auto items = assembled.host_items(rt);
  if (items.size() != G) {
    res.validation_message = "assembled " + std::to_string(items.size()) +
                             " segments, expected " + std::to_string(G);
    return res;
  }
  for (uint64_t i = 0; i < G; ++i) {
    if (items[i].first != i + 1 || items[i].second != i) {
      res.validation_message = "gene broken at position " + std::to_string(i);
      return res;
    }
  }
  std::string why;
  if (!assembled.host_validate(rt, &why)) {
    res.validation_message = "tree invariant: " + why;
    return res;
  }
  res.valid = true;
  res.validation_message = "ok";
  return res;
}

}  // namespace tsx::stamp
