#include "stamp/apps/intruder.h"

#include <algorithm>
#include <vector>

#include "sim/rng.h"
#include "stamp/lib/list.h"
#include "stamp/lib/queue.h"
#include "stamp/lib/rbtree.h"

namespace tsx::stamp {

namespace {

// Flow descriptor in simulated memory (words):
//   [0]=flow id [1]=total fragments [2]=fragments received [3]=list header
constexpr uint64_t kFlowWords = 4;

// A packet word packs (flow id << 20) | (total << 10) | fragment seq.
sim::Word pack_packet(uint64_t flow, uint64_t total, uint64_t seq) {
  return (flow << 20) | (total << 10) | seq;
}
void unpack_packet(sim::Word p, uint64_t* flow, uint64_t* total, uint64_t* seq) {
  *flow = p >> 20;
  *total = (p >> 10) & 0x3ff;
  *seq = p & 0x3ff;
}

}  // namespace

AppResult run_intruder(const core::RunConfig& run_cfg,
                       const IntruderConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();

  // ---- Host setup: flows, shuffled fragment stream ----
  sim::Rng rng(app.seed);
  std::vector<uint32_t> flow_fragments(app.flows);
  std::vector<bool> is_attack(app.flows);
  uint64_t total_packets = 0;
  for (uint32_t f = 0; f < app.flows; ++f) {
    flow_fragments[f] = 1 + static_cast<uint32_t>(rng.below(app.max_fragments));
    is_attack[f] = rng.below(100) < app.attack_fraction_pct;
    total_packets += flow_fragments[f];
  }
  std::vector<sim::Word> stream;
  stream.reserve(total_packets);
  for (uint32_t f = 0; f < app.flows; ++f) {
    for (uint32_t s = 0; s < flow_fragments[f]; ++s) {
      stream.push_back(pack_packet(f + 1, flow_fragments[f], s));
    }
  }
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }

  Queue packets = Queue::create(rt, total_packets + 1);
  for (sim::Word p : stream) packets.host_push(rt, p);

  RbTree flows = RbTree::create_host(rt);
  sim::Addr counters = heap.host_alloc(24, 64);
  m.poke(counters, 0);       // processed flows
  m.poke(counters + 8, 0);   // detected attacks
  m.poke(counters + 16, 0);  // fragment-order errors seen at reassembly

  rt.run([&](core::TxCtx& ctx) {
    measured_region_begin(ctx);

    for (;;) {
      sim::Word pkt = 0;
      bool got = false;
      ctx.transaction([&] { got = packets.pop(ctx, &pkt); },
                      kIntruderSiteQueue);
      if (!got) break;
      uint64_t flow_id, total, seq;
      unpack_packet(pkt, &flow_id, &total, &seq);

      // ---- TID1: the reassembly transaction ----
      sim::Addr complete_flow = 0;
      ctx.transaction(
          [&] {
            complete_flow = 0;
            sim::Addr flow = flows.find_node(ctx, flow_id);
            sim::Addr desc;
            if (flow == 0) {
              desc = ctx.malloc(kFlowWords * 8);
              ctx.store(desc, flow_id);
              ctx.store(desc + 8, total);
              ctx.store(desc + 16, 0);
              List l = List::create(ctx);
              ctx.store(desc + 24, l.header());
              flows.insert(ctx, flow_id, desc);
            } else {
              desc = flows.node_value(ctx, flow);
            }
            List frag_list(ctx.load(desc + 24));
            if (app.optimized) {
              // §V-A: constant-time prepend; sort later, outside the tx.
              frag_list.push_front(ctx, seq, pkt);
            } else {
              // Baseline: keep the fragment list sorted at all times.
              frag_list.insert_sorted(ctx, seq, pkt);
            }
            sim::Word got_frags = ctx.load(desc + 16) + 1;
            ctx.store(desc + 16, got_frags);
            if (got_frags == ctx.load(desc + 8)) {
              flows.remove(ctx, flow_id);
              complete_flow = desc;  // now private to this thread
            }
          },
          kIntruderSiteReassembly);

      if (complete_flow == 0) continue;

      // ---- Reassembly finalization + detection, non-transactional ----
      List frag_list(m.peek(complete_flow + 24));
      if (app.optimized) {
        // The deferred sort the optimized version pays once per flow. Its
        // cost is modeled as compute proportional to n log n.
        uint64_t len = m.peek(complete_flow + 8);
        uint64_t cost = 1;
        while ((1ull << cost) < len) ++cost;
        ctx.compute(10 * len * cost);
        frag_list.host_sort(rt);
      }
      // Walk fragments in order; verify sequence (reads are non-tx: the
      // flow is private now).
      uint64_t expect_seq = 0;
      bool order_ok = true;
      sim::Word k = 0, v = 0;
      while (frag_list.pop_front(ctx, &k, &v)) {
        if (k != expect_seq++) order_ok = false;
        // Signature matching cost per fragment.
        ctx.compute(80);
      }
      ctx.free(m.peek(complete_flow + 24));
      uint64_t fid = m.peek(complete_flow);
      ctx.free(complete_flow);

      ctx.transaction([&] {
        ctx.store(counters, ctx.load(counters) + 1);
        if (is_attack[fid - 1]) {
          ctx.store(counters + 8, ctx.load(counters + 8) + 1);
        }
        if (!order_ok) {
          ctx.store(counters + 16, ctx.load(counters + 16) + 1);
        }
      });
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = total_packets;

  uint64_t processed = m.peek(counters);
  uint64_t detected = m.peek(counters + 8);
  uint64_t order_errors = m.peek(counters + 16);
  uint64_t expected_attacks = 0;
  for (uint32_t f = 0; f < app.flows; ++f) expected_attacks += is_attack[f];

  if (processed != app.flows) {
    res.validation_message = "processed " + std::to_string(processed) +
                             " flows, expected " + std::to_string(app.flows);
    return res;
  }
  if (detected != expected_attacks) {
    res.validation_message = "attack count mismatch";
    return res;
  }
  if (order_errors != 0) {
    res.validation_message = std::to_string(order_errors) +
                             " flows reassembled out of order";
    return res;
  }
  if (flows.host_size(rt) != 0) {
    res.validation_message = "incomplete flows left in the tree";
    return res;
  }
  std::string why;
  if (!flows.host_validate(rt, &why)) {
    res.validation_message = "tree invariant: " + why;
    return res;
  }
  res.valid = true;
  res.validation_message = "ok";
  return res;
}

}  // namespace tsx::stamp
