#pragma once
// Common result type for the STAMP-lite applications.
//
// Every app follows the same protocol:
//   1. host-side setup (no simulated cost),
//   2. a barrier, mark_measurement_start() on thread 0, a barrier,
//   3. the measured parallel phase,
//   4. host-side validation of the final simulated state.
//
// The RunReport therefore covers exactly the parallel phase, like the
// paper's timers around STAMP's TM regions.

#include <string>

#include "core/runtime.h"

namespace tsx::stamp {

struct AppResult {
  core::RunReport report;
  bool valid = false;
  std::string validation_message;  // human-readable reason when invalid
  uint64_t work_items = 0;         // app-defined unit count (for cycles/tx)
};

// Standard measured-region bracket used by every app's worker.
inline void measured_region_begin(core::TxCtx& ctx) {
  ctx.barrier();
  if (ctx.id() == 0) ctx.runtime().mark_measurement_start();
  ctx.barrier();
}

}  // namespace tsx::stamp
