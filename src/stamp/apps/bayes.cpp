#include "stamp/apps/bayes.h"

#include <vector>

#include "sim/rng.h"

namespace tsx::stamp {

AppResult run_bayes(const core::RunConfig& run_cfg, const BayesConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();
  const uint32_t V = app.variables;
  const uint32_t S = app.stats_words;

  // ---- Host setup ----
  sim::Rng rng(app.seed);
  // Sufficient statistics per variable (the large read-mostly data).
  sim::Addr stats = heap.host_alloc(uint64_t(V) * S * 8, 64);
  for (uint64_t i = 0; i < uint64_t(V) * S; ++i) {
    m.poke(stats + i * 8, rng.below(1000));
  }
  // Adjacency matrix (VxV words) + per-variable score + global score.
  sim::Addr adj = heap.host_alloc(uint64_t(V) * V * 8, 64);
  for (uint64_t i = 0; i < uint64_t(V) * V; ++i) m.poke(adj + i * 8, 0);
  sim::Addr var_score = heap.host_alloc(uint64_t(V) * 8, 64);
  for (uint32_t v = 0; v < V; ++v) m.poke(var_score + v * 8, 0);
  sim::Addr global = heap.host_alloc(16, 64);
  m.poke(global, 0);      // unused spacer (keeps the counter on its own word)
  m.poke(global + 8, 0);  // next candidate index (work distribution)

  // Distinct candidate pairs u < v.
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  {
    std::vector<std::pair<uint32_t, uint32_t>> all;
    for (uint32_t u = 0; u < V; ++u) {
      for (uint32_t v = u + 1; v < V; ++v) all.emplace_back(u, v);
    }
    for (size_t i = all.size(); i > 1; --i) {
      std::swap(all[i - 1], all[rng.below(i)]);
    }
    uint32_t n_cand = std::min<uint32_t>(app.candidates, all.size());
    candidates.assign(all.begin(), all.begin() + n_cand);
  }

  // The scoring function: a deterministic reduction over both variables'
  // statistics, mapped to a signed delta in [-500, 500). The host oracle
  // computes the same value.
  auto host_delta = [&](uint32_t u, uint32_t v) -> int64_t {
    uint64_t acc = 0x9e3779b97f4a7c15ull ^ (uint64_t(u) << 32) ^ v;
    for (uint32_t i = 0; i < S; ++i) {
      acc = acc * 31 + m.peek(stats + (uint64_t(u) * S + i) * 8);
      acc = acc * 31 + m.peek(stats + (uint64_t(v) * S + i) * 8);
    }
    return static_cast<int64_t>(acc % 1000) - 500;
  };

  rt.run([&](core::TxCtx& ctx) {
    measured_region_begin(ctx);

    for (;;) {
      // Claim the next candidate (short transaction on the work counter).
      uint64_t idx = ~0ull;
      ctx.transaction([&] {
        uint64_t next = ctx.load(global + 8);
        idx = next;
        if (next < candidates.size()) ctx.store(global + 8, next + 1);
      });
      if (idx >= candidates.size()) break;
      auto [u, v] = candidates[idx];

      // The learning transaction. Like STAMP's bayes, the CURRENT local
      // score and adjacency row are read up front (the decision depends on
      // them), so they sit in the transaction's read set for its whole
      // duration — and the per-variable score array packs many variables
      // per cache line, so RTM sees false conflicts between independent
      // adoptions that word-granular TinySTM does not.
      ctx.transaction(
          [&] {
            sim::Addr score_cell = var_score + uint64_t(v) * 8;
            sim::Word old_score = ctx.load(score_cell);
            sim::Addr cell = adj + (uint64_t(u) * V + v) * 8;
            if (ctx.load(cell) != 0) return;  // already present
            // Score the candidate: a long read phase over both variables'
            // sufficient statistics.
            uint64_t acc = 0x9e3779b97f4a7c15ull ^ (uint64_t(u) << 32) ^ v;
            for (uint32_t i = 0; i < S; ++i) {
              acc = acc * 31 + ctx.load(stats + (uint64_t(u) * S + i) * 8);
              acc = acc * 31 + ctx.load(stats + (uint64_t(v) * S + i) * 8);
            }
            ctx.compute(6 * S);  // log-likelihood arithmetic
            int64_t delta = static_cast<int64_t>(acc % 1000) - 500;
            if (delta <= 0) return;
            ctx.store(cell, 1);
            ctx.store(score_cell, old_score + static_cast<sim::Word>(delta));
          },
          /*site=*/1);
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = candidates.size();

  // ---- Validation against the deterministic oracle ----
  int64_t want_score = 0;
  std::vector<uint8_t> want_adj(uint64_t(V) * V, 0);
  std::vector<int64_t> want_var(V, 0);
  for (auto [u, v] : candidates) {
    int64_t d = host_delta(u, v);
    if (d > 0) {
      want_adj[uint64_t(u) * V + v] = 1;
      want_var[v] += d;
      want_score += d;
    }
  }
  for (uint64_t i = 0; i < uint64_t(V) * V; ++i) {
    if (m.peek(adj + i * 8) != want_adj[i]) {
      res.validation_message = "adjacency mismatch at cell " + std::to_string(i);
      return res;
    }
  }
  int64_t got_score = 0;
  for (uint32_t v = 0; v < V; ++v) {
    int64_t vs = static_cast<int64_t>(m.peek(var_score + uint64_t(v) * 8));
    if (vs != want_var[v]) {
      res.validation_message = "variable score mismatch at " + std::to_string(v);
      return res;
    }
    got_score += vs;
  }
  if (got_score != want_score) {
    res.validation_message = "total score mismatch";
    return res;
  }
  res.valid = true;
  res.validation_message = "ok (score " + std::to_string(want_score) + ")";
  return res;
}

}  // namespace tsx::stamp
