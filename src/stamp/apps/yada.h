#pragma once
// yada (STAMP): Ruppert-style Delaunay mesh refinement. This port preserves
// the transactional *shape* rather than the geometry: elements form a
// 3-regular "mesh" graph; a shared min-heap feeds bad elements to worker
// threads; each refinement transaction expands a cavity around the bad
// element (radius-2 neighbourhood reads), retriangulates it (kills the
// cavity, allocates replacement elements, relinks the boundary — scattered
// writes), and pushes any new bad elements back onto the shared heap.
// Paper characteristics: big working set, medium transaction length, large
// read/write sets, medium contention — TinySTM wins at every thread count.
// DESIGN.md documents this substitution (geometry → graph analogue).

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct YadaConfig {
  uint32_t elements = 4096;       // initial mesh size
  uint32_t initial_bad_pct = 10;  // % of elements initially bad
  uint32_t new_bad_pct = 18;      // % of replacement elements that are bad
  uint32_t max_refinements = 4000;  // safety cap on processed cavities
  uint64_t seed = 7;
};

AppResult run_yada(const core::RunConfig& run_cfg, const YadaConfig& app);

}  // namespace tsx::stamp
