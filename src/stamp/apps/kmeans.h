#pragma once
// kmeans (STAMP): iterative K-means clustering. Characteristics per the
// paper: very short transactions (one accumulator update), small working
// set, high locality, low contention — the configuration where RTM wins and
// is the only TM system that also saves energy.
//
// All arithmetic is integral (squared euclidean distance on integer-valued
// features), so sequential and parallel runs converge to bit-identical
// centers — the validation recomputes the whole clustering host-side.

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct KmeansConfig {
  uint32_t points = 2048;
  uint32_t dims = 8;
  uint32_t clusters = 16;
  uint32_t iterations = 4;
  uint64_t value_range = 1024;  // feature values in [0, range)
  uint64_t seed = 1;
};

AppResult run_kmeans(const core::RunConfig& run_cfg, const KmeansConfig& app);

}  // namespace tsx::stamp
