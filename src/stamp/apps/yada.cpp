#include "stamp/apps/yada.h"

#include <algorithm>
#include <map>
#include <vector>

#include "sim/rng.h"
#include "stamp/lib/heap.h"

namespace tsx::stamp {

namespace {

// Element record (words): [0]=alive [1]=bad [2..4]=neighbor addresses,
// padded to two cache lines like STAMP's element_t (coordinates, circum-
// center, encroachment state...), so meshes have realistic footprints.
constexpr uint64_t kElemWords = 16;

constexpr sim::Addr nb_a(sim::Addr e, int slot) { return e + 16 + slot * 8; }

}  // namespace

AppResult run_yada(const core::RunConfig& run_cfg, const YadaConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap_alloc = rt.heap();
  auto& m = rt.machine();
  const uint64_t E = app.elements & ~1ull;  // even, for the chord pairing

  // ---- Host setup: 3-regular ring-with-chords mesh ----
  sim::Rng rng(app.seed);
  std::vector<sim::Addr> elems(E);
  for (uint64_t i = 0; i < E; ++i) {
    elems[i] = heap_alloc.host_alloc(kElemWords * 8);
  }
  uint64_t initial_bad = 0;
  for (uint64_t i = 0; i < E; ++i) {
    bool bad = rng.below(100) < app.initial_bad_pct;
    initial_bad += bad;
    m.poke(elems[i], 1);
    m.poke(elems[i] + 8, bad ? 1 : 0);
    m.poke(nb_a(elems[i], 0), elems[(i + 1) % E]);
    m.poke(nb_a(elems[i], 1), elems[(i + E - 1) % E]);
    m.poke(nb_a(elems[i], 2), elems[(i + E / 2) % E]);
  }
  BinHeap work = BinHeap::create_host(rt, E + app.max_refinements * 4 + 64);
  for (uint64_t i = 0; i < E; ++i) {
    if (m.peek(elems[i] + 8)) work.host_push(rt, elems[i]);
  }

  sim::Addr counters = heap_alloc.host_alloc(24, 64);
  m.poke(counters, 0);       // refinements performed
  m.poke(counters + 8, 0);   // stale pops (element already dead/good)
  m.poke(counters + 16, 0);  // new bad elements produced

  rt.run([&](core::TxCtx& ctx) {
    sim::Rng& trng = ctx.rng();
    std::vector<sim::Addr> cavity, boundary_elem, seen_nb;
    std::vector<int> boundary_slot;

    measured_region_begin(ctx);

    for (;;) {
      bool done = false;
      // Pre-draw randomness so retries replay identically.
      uint64_t bad_draws[64];
      for (auto& d : bad_draws) d = trng.below(100);

      // ---- Work-acquisition transaction (small, like STAMP's heap pop) ----
      sim::Addr e = 0;
      ctx.transaction(
          [&] {
            e = 0;
            done = false;
            if (ctx.load(counters) >= app.max_refinements) {
              done = true;
              return;
            }
            sim::Word w = 0;
            if (!work.pop_min(ctx, &w)) {
              done = true;
              return;
            }
            e = static_cast<sim::Addr>(w);
          },
          /*site=*/2);
      if (done) break;
      if (e == 0) continue;

      // ---- Refinement transaction (big: cavity reads + scattered writes).
      // The element may have been consumed by a concurrent cavity between
      // the two transactions; re-check and skip if stale.
      ctx.transaction(
          [&] {
            if (ctx.load(e) == 0 || ctx.load(e + 8) == 0) {
              // Stale queue entry: the element was consumed by an earlier
              // cavity or is no longer bad.
              ctx.store(counters + 8, ctx.load(counters + 8) + 1);
              return;
            }
            // ---- Cavity: radius-2 alive neighbourhood of e ----
            cavity.clear();
            cavity.push_back(e);
            auto in_cavity = [&](sim::Addr x) {
              return std::find(cavity.begin(), cavity.end(), x) != cavity.end();
            };
            for (int ring = 0; ring < 2; ++ring) {
              size_t end = cavity.size();
              for (size_t i = 0; i < end; ++i) {
                for (int s = 0; s < 3; ++s) {
                  sim::Addr nb = ctx.load(nb_a(cavity[i], s));
                  if (nb == 0 || in_cavity(nb)) continue;
                  if (ctx.load(nb) == 0) continue;  // dead
                  cavity.push_back(nb);
                }
              }
            }
            // ---- Boundary: alive elements with links into the cavity ----
            // Each boundary element is visited once; every one of its slots
            // that points into the cavity becomes a dangling slot to relink.
            boundary_elem.clear();
            boundary_slot.clear();
            seen_nb.clear();
            for (sim::Addr c : cavity) {
              for (int s = 0; s < 3; ++s) {
                sim::Addr nb = ctx.load(nb_a(c, s));
                if (nb == 0 || in_cavity(nb)) continue;
                if (ctx.load(nb) == 0) continue;
                if (std::find(seen_nb.begin(), seen_nb.end(), nb) !=
                    seen_nb.end()) {
                  continue;
                }
                seen_nb.push_back(nb);
                for (int bs = 0; bs < 3; ++bs) {
                  if (in_cavity(ctx.load(nb_a(nb, bs)))) {
                    boundary_elem.push_back(nb);
                    boundary_slot.push_back(bs);
                  }
                }
              }
            }
            // ---- Retriangulate ----
            for (sim::Addr c : cavity) ctx.store(c, 0);  // kill
            uint64_t D = boundary_elem.size();
            uint64_t new_bad = 0;
            if (D > 0) {
              std::vector<sim::Addr> fresh(D);
              for (uint64_t j = 0; j < D; ++j) {
                fresh[j] = ctx.malloc(kElemWords * 8);
              }
              for (uint64_t j = 0; j < D; ++j) {
                bool bad = bad_draws[j % 64] < app.new_bad_pct;
                ctx.store(fresh[j], 1);
                ctx.store(fresh[j] + 8, bad ? 1 : 0);
                ctx.store(nb_a(fresh[j], 0), fresh[(j + 1) % D]);
                ctx.store(nb_a(fresh[j], 1), fresh[(j + D - 1) % D]);
                ctx.store(nb_a(fresh[j], 2), boundary_elem[j]);
                ctx.store(nb_a(boundary_elem[j], boundary_slot[j]), fresh[j]);
                if (bad) {
                  work.push(ctx, fresh[j]);
                  ++new_bad;
                }
              }
            }
            ctx.store(counters, ctx.load(counters) + 1);
            ctx.store(counters + 16, ctx.load(counters + 16) + new_bad);
          },
          /*site=*/1);
      ctx.compute(300);  // per-cavity geometric bookkeeping outside the tx
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = m.peek(counters);

  // ---- Validation: the alive mesh is link-consistent ----
  // Gather all alive elements reachable through the records we know about:
  // originals plus everything the heap allocator handed out. We walk links
  // from alive originals; every alive element must have alive targets and
  // multiset-reciprocal links.
  std::map<sim::Addr, std::array<sim::Addr, 3>> alive;
  std::vector<sim::Addr> stack;
  auto consider = [&](sim::Addr e) {
    if (e == 0 || alive.count(e) || m.peek(e) == 0) return;
    alive[e] = {m.peek(nb_a(e, 0)), m.peek(nb_a(e, 1)), m.peek(nb_a(e, 2))};
    stack.push_back(e);
  };
  for (sim::Addr e : elems) consider(e);
  while (!stack.empty()) {
    sim::Addr e = stack.back();
    stack.pop_back();
    for (sim::Addr nb : alive[e]) consider(nb);
  }
  std::map<std::pair<sim::Addr, sim::Addr>, int> link_count;
  for (const auto& [e, nbs] : alive) {
    for (sim::Addr nb : nbs) {
      if (nb == 0) {
        res.validation_message = "alive element with null link";
        return res;
      }
      if (m.peek(nb) == 0) {
        res.validation_message = "alive element links to dead element";
        return res;
      }
      ++link_count[{e, nb}];
    }
  }
  for (const auto& [edge, count] : link_count) {
    auto rev = link_count.find({edge.second, edge.first});
    if (rev == link_count.end() || rev->second != count) {
      res.validation_message = "non-reciprocal link";
      return res;
    }
  }
  uint64_t refinements = m.peek(counters);
  if (refinements == 0 && initial_bad > 0) {
    res.validation_message = "no refinements performed despite bad elements";
    return res;
  }
  res.valid = true;
  res.validation_message =
      "ok (" + std::to_string(refinements) + " refinements, " +
      std::to_string(alive.size()) + " alive elements)";
  return res;
}

}  // namespace tsx::stamp
