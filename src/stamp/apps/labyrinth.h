#pragma once
// labyrinth (STAMP): Lee-style path routing in a 3-D grid. Each thread grabs
// a (source, destination) work item and routes it with a breadth-first
// expansion — STAMP copies the ENTIRE global grid into a private buffer
// inside the transaction, so the transactional write-set equals the grid
// size. With the default grid (> 512 cache lines) every hardware attempt
// dies with a write-capacity abort and falls back to the serial lock: the
// paper's "labyrinth does not scale in RTM, and multi-threaded RTM runs
// burn energy on doomed speculation".

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct LabyrinthConfig {
  uint32_t width = 48;
  uint32_t height = 48;
  uint32_t depth = 2;      // grid words = w*h*d (48*48*2 = 4608 = 36 KB)
  uint32_t paths = 24;     // routing requests
  uint64_t seed = 3;
};

AppResult run_labyrinth(const core::RunConfig& run_cfg,
                        const LabyrinthConfig& app);

}  // namespace tsx::stamp
