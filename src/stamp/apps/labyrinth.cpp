#include "stamp/apps/labyrinth.h"

#include <array>
#include <vector>

#include "sim/rng.h"
#include "stamp/lib/queue.h"

namespace tsx::stamp {

namespace {

struct Grid {
  uint32_t w, h, d;
  uint64_t cells() const { return uint64_t(w) * h * d; }
  uint64_t idx(uint32_t x, uint32_t y, uint32_t z) const {
    return (uint64_t(z) * h + y) * w + x;
  }
  void coords(uint64_t i, uint32_t* x, uint32_t* y, uint32_t* z) const {
    *x = static_cast<uint32_t>(i % w);
    *y = static_cast<uint32_t>((i / w) % h);
    *z = static_cast<uint32_t>(i / (uint64_t(w) * h));
  }
  // 6-neighbourhood (4 in-plane + up/down).
  void neighbors(uint64_t i, std::vector<uint64_t>* out) const {
    out->clear();
    uint32_t x, y, z;
    coords(i, &x, &y, &z);
    if (x > 0) out->push_back(idx(x - 1, y, z));
    if (x + 1 < w) out->push_back(idx(x + 1, y, z));
    if (y > 0) out->push_back(idx(x, y - 1, z));
    if (y + 1 < h) out->push_back(idx(x, y + 1, z));
    if (z > 0) out->push_back(idx(x, y, z - 1));
    if (z + 1 < d) out->push_back(idx(x, y, z + 1));
  }
};

constexpr sim::Word kEmpty = 0;

}  // namespace

AppResult run_labyrinth(const core::RunConfig& run_cfg,
                        const LabyrinthConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();
  Grid g{app.width, app.height, app.depth};
  const uint64_t cells = g.cells();

  sim::Addr grid = heap.host_alloc(cells * 8, 64);
  for (uint64_t i = 0; i < cells; ++i) m.poke(grid + i * 8, kEmpty);

  // Per-thread private expansion buffer (same size as the grid).
  std::vector<sim::Addr> priv(run_cfg.threads);
  for (auto& p : priv) p = heap.host_alloc(cells * 8, 64);

  // Work items: distinct (src,dst) endpoint pairs, host-generated.
  sim::Rng rng(app.seed);
  std::vector<std::pair<uint64_t, uint64_t>> tasks;
  std::vector<bool> used(cells, false);
  while (tasks.size() < app.paths) {
    uint64_t s = rng.below(cells), t = rng.below(cells);
    if (s == t || used[s] || used[t]) continue;
    used[s] = used[t] = true;
    tasks.emplace_back(s, t);
  }
  Queue work = Queue::create(rt, app.paths + 1);
  for (uint64_t i = 0; i < tasks.size(); ++i) work.host_push(rt, i + 1);

  sim::Addr routed_addr = heap.host_alloc(16, 64);
  m.poke(routed_addr, 0);      // successfully routed paths
  m.poke(routed_addr + 8, 0);  // failed (blocked) paths

  rt.run([&](core::TxCtx& ctx) {
    sim::Addr my_priv = priv[ctx.id()];
    std::vector<uint64_t> frontier, next, nbrs;

    measured_region_begin(ctx);

    for (;;) {
      sim::Word task_id = 0;
      bool got = false;
      ctx.transaction([&] { got = work.pop(ctx, &task_id); }, /*site=*/2);
      if (!got) break;
      auto [src, dst] = tasks[task_id - 1];

      bool routed = false;
      ctx.transaction(
          [&] {
            // STAMP's grid_copy: the whole global grid into the private
            // buffer, INSIDE the transaction (the write-capacity bomb).
            for (uint64_t i = 0; i < cells; ++i) {
              ctx.store(my_priv + i * 8, ctx.load(grid + i * 8));
            }
            // BFS wavefront expansion on the private copy.
            routed = false;
            if (ctx.load(my_priv + src * 8) != kEmpty ||
                ctx.load(my_priv + dst * 8) != kEmpty) {
              return;  // endpoint already occupied: fail
            }
            frontier.assign(1, src);
            // Distances are stored as ~(dist+1): they live near 2^64 so they
            // can't clash with path ids, and closer-to-src compares larger.
            ctx.store(my_priv + src * 8, ~sim::Word(1));
            bool reached = false;
            for (uint32_t dist = 1; !frontier.empty() && !reached; ++dist) {
              next.clear();
              for (uint64_t cell : frontier) {
                g.neighbors(cell, &nbrs);
                for (uint64_t nb : nbrs) {
                  sim::Word v = ctx.load(my_priv + nb * 8);
                  if (v != kEmpty) continue;  // wall, path, or visited
                  ctx.store(my_priv + nb * 8, ~sim::Word(dist + 1));
                  if (nb == dst) {
                    reached = true;
                    break;
                  }
                  next.push_back(nb);
                }
                if (reached) break;
              }
              frontier.swap(next);
            }
            if (!reached) return;
            // Trace back from dst to src, writing the path into the GLOBAL
            // grid (these are the semantically required writes).
            sim::Word path_mark = task_id;
            uint64_t cur = dst;
            sim::Word cur_d = ctx.load(my_priv + dst * 8);
            while (cur != src) {
              ctx.store(grid + cur * 8, path_mark);
              g.neighbors(cur, &nbrs);
              uint64_t best = cur;
              for (uint64_t nb : nbrs) {
                sim::Word v = ctx.load(my_priv + nb * 8);
                // Smaller distance marker = closer to src (~ inverts order).
                if (v > ~sim::Word(0) - 100000 && v > cur_d) {
                  best = nb;
                  cur_d = v;
                }
              }
              if (best == cur) return;  // traceback failed: abort the route
              cur = best;
            }
            ctx.store(grid + src * 8, path_mark);
            routed = true;
          },
          /*site=*/1);

      ctx.transaction([&] {
        sim::Addr counter = routed ? routed_addr : routed_addr + 8;
        ctx.store(counter, ctx.load(counter) + 1);
      });
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = app.paths;

  // Validation: routed+failed == paths; every routed path is a connected
  // chain of its own marks containing both endpoints; no mark belongs to an
  // unknown task.
  uint64_t routed = m.peek(routed_addr);
  uint64_t failed = m.peek(routed_addr + 8);
  if (routed + failed != app.paths) {
    res.validation_message = "routed+failed != paths";
    return res;
  }
  std::vector<uint64_t> mark_count(app.paths + 1, 0);
  for (uint64_t i = 0; i < cells; ++i) {
    sim::Word v = m.peek(grid + i * 8);
    if (v == kEmpty) continue;
    if (v > app.paths) {
      res.validation_message = "unknown mark in grid";
      return res;
    }
    ++mark_count[v];
  }
  std::vector<uint64_t> nbrs;
  uint64_t routed_seen = 0;
  for (uint64_t tid = 1; tid <= app.paths; ++tid) {
    if (mark_count[tid] == 0) continue;
    ++routed_seen;
    auto [src, dst] = tasks[tid - 1];
    if (m.peek(grid + src * 8) != tid || m.peek(grid + dst * 8) != tid) {
      res.validation_message = "path " + std::to_string(tid) +
                               " does not cover its endpoints";
      return res;
    }
    // Connectivity: BFS over cells marked tid from src must reach dst.
    std::vector<uint64_t> stack{src};
    std::vector<bool> seen(cells, false);
    seen[src] = true;
    bool reached = false;
    while (!stack.empty()) {
      uint64_t cur = stack.back();
      stack.pop_back();
      if (cur == dst) {
        reached = true;
        break;
      }
      g.neighbors(cur, &nbrs);
      for (uint64_t nb : nbrs) {
        if (!seen[nb] && m.peek(grid + nb * 8) == tid) {
          seen[nb] = true;
          stack.push_back(nb);
        }
      }
    }
    if (!reached) {
      res.validation_message = "path " + std::to_string(tid) + " disconnected";
      return res;
    }
  }
  if (routed_seen != routed) {
    res.validation_message = "routed counter mismatch";
    return res;
  }
  res.valid = true;
  res.validation_message = "ok (" + std::to_string(routed) + "/" +
                           std::to_string(app.paths) + " routed)";
  return res;
}

}  // namespace tsx::stamp
