#include "stamp/apps/vacation.h"

#include <vector>

#include "sim/rng.h"
#include "stamp/lib/list.h"
#include "stamp/lib/rbtree.h"

namespace tsx::stamp {

namespace {

// Item record (words): [0]=available [1]=price [2]=total instances
constexpr uint64_t kItemWords = 3;
constexpr uint32_t kTables = 3;  // cars, flights, rooms

// Reservation-list key: (table << 32) | item id, as STAMP sorts by type+id.
sim::Word reservation_key(uint32_t table, uint64_t item) {
  return (sim::Word(table) << 32) | item;
}

}  // namespace

AppResult run_vacation(const core::RunConfig& run_cfg,
                       const VacationConfig& app) {
  core::RunConfig cfg = run_cfg;
  cfg.heap.prefault_on_refill = app.optimized;  // §V-B allocator change
  core::TxRuntime rt(cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();

  // ---- Host setup: three item tables + the customer table ----
  sim::Rng rng(app.seed);
  std::array<RbTree, kTables> tables = {RbTree::create_host(rt),
                                        RbTree::create_host(rt),
                                        RbTree::create_host(rt)};
  RbTree customers = RbTree::create_host(rt);
  sim::Addr stats_words = heap.host_alloc(16, 64);
  m.poke(stats_words, 0);      // completed reservations (bookings made)
  m.poke(stats_words + 8, 0);  // completed cancellations

  std::vector<uint64_t> booked_per_thread(cfg.threads, 0);
  std::vector<uint64_t> cancelled_per_thread(cfg.threads, 0);

  rt.run([&](core::TxCtx& ctx) {
    uint32_t t = ctx.id();
    sim::Rng& trng = ctx.rng();

    // ---- Setup phase (before the measured region) ----
    if (t == 0) {
      for (uint32_t tab = 0; tab < kTables; ++tab) {
        for (uint64_t item = 1; item <= app.relations; ++item) {
          sim::Addr rec = ctx.malloc(kItemWords * 8);
          uint64_t avail = 5 + rng.below(10);
          uint64_t price = 50 + rng.below(500);
          ctx.store(rec, avail);
          ctx.store(rec + 8, price);
          ctx.store(rec + 16, avail);
          tables[tab].insert(ctx, item, rec);
        }
      }
      for (uint64_t c = 1; c <= app.customers; ++c) {
        List l = List::create(ctx);
        customers.insert(ctx, c, l.header());
      }
    }

    measured_region_begin(ctx);

    for (uint32_t s = 0; s < app.sessions_per_thread; ++s) {
      uint32_t dice = static_cast<uint32_t>(trng.below(100));
      uint64_t cust = 1 + trng.below(app.customers);

      if (dice < app.reserve_pct) {
        // ---- Reservation session ----
        // Pre-draw the random queries so every retry sees the same session.
        std::array<std::pair<uint32_t, uint64_t>, 8> queries;
        uint32_t nq = std::min<uint32_t>(app.queries_per_session, 8);
        for (uint32_t q = 0; q < nq; ++q) {
          queries[q] = {static_cast<uint32_t>(trng.below(kTables)),
                        1 + trng.below(app.relations)};
        }
        bool booked = false;
        ctx.transaction(
            [&] {
              booked = false;
              // Query phase: find the best-priced available item.
              uint32_t best_tab = 0;
              uint64_t best_item = 0, best_price = ~0ull;
              sim::Addr best_node = 0;
              for (uint32_t q = 0; q < nq; ++q) {
                auto [tab, item] = queries[q];
                sim::Addr node = tables[tab].find_node(ctx, item);
                if (node == 0) continue;
                if (!app.optimized) {
                  // Baseline: a redundant second lookup to read the price,
                  // exactly the §V-B pathology.
                  node = tables[tab].find_node(ctx, item);
                }
                sim::Addr rec = tables[tab].node_value(ctx, node);
                uint64_t avail = ctx.load(rec);
                uint64_t price = ctx.load(rec + 8);
                if (avail > 0 && price < best_price) {
                  best_price = price;
                  best_tab = tab;
                  best_item = item;
                  best_node = node;
                }
              }
              if (best_item == 0) return;
              // Reserve: decrement availability + append to customer list.
              sim::Addr rec;
              if (app.optimized) {
                rec = tables[best_tab].node_value(ctx, best_node);
              } else {
                // Baseline: yet another lookup of the chosen item.
                sim::Addr node = tables[best_tab].find_node(ctx, best_item);
                rec = tables[best_tab].node_value(ctx, node);
              }
              ctx.store(rec, ctx.load(rec) - 1);
              sim::Addr cnode = customers.find_node(ctx, cust);
              List rl(customers.node_value(ctx, cnode));
              // The reservation node is fresh memory: in the baseline it can
              // fault inside the transaction (misc3); the optimized
              // allocator pre-faulted it.
              if (app.optimized) {
                rl.push_front(ctx, reservation_key(best_tab, best_item),
                              best_price);
              } else {
                rl.insert_sorted(ctx, reservation_key(best_tab, best_item),
                                 best_price);
              }
              booked = true;
            },
            kVacationSiteReserve);
        if (booked) ++booked_per_thread[t];
      } else if (dice < app.reserve_pct + (100 - app.reserve_pct -
                                           app.update_pct) ||
                 app.update_pct == 0) {
        // ---- Cancellation session ----
        bool cancelled = false;
        ctx.transaction(
            [&] {
              cancelled = false;
              sim::Addr cnode = customers.find_node(ctx, cust);
              List rl(customers.node_value(ctx, cnode));
              sim::Word key = 0, price = 0;
              if (!rl.pop_front(ctx, &key, &price)) return;
              uint32_t tab = static_cast<uint32_t>(key >> 32);
              uint64_t item = key & 0xffffffffull;
              sim::Addr node = tables[tab].find_node(ctx, item);
              sim::Addr rec = tables[tab].node_value(ctx, node);
              ctx.store(rec, ctx.load(rec) + 1);
              cancelled = true;
            },
            kVacationSiteCancel);
        if (cancelled) ++cancelled_per_thread[t];
      } else {
        // ---- Update session: change the price of a random item ----
        uint32_t tab = static_cast<uint32_t>(trng.below(kTables));
        uint64_t item = 1 + trng.below(app.relations);
        uint64_t new_price = 50 + trng.below(500);
        ctx.transaction(
            [&] {
              sim::Addr node = tables[tab].find_node(ctx, item);
              if (node == 0) return;
              sim::Addr rec = tables[tab].node_value(ctx, node);
              ctx.store(rec + 8, new_price);
            },
            kVacationSiteUpdate);
      }
    }

    // Publish per-thread tallies.
    ctx.transaction([&] {
      ctx.store(stats_words, ctx.load(stats_words) + booked_per_thread[t]);
      ctx.store(stats_words + 8,
                ctx.load(stats_words + 8) + cancelled_per_thread[t]);
    });
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = uint64_t(app.sessions_per_thread) * cfg.threads;

  // ---- Validation: conservation of instances ----
  // For every item: total - available == live reservations of that item.
  uint64_t live_reservations = 0;
  std::vector<uint64_t> reserved_count(kTables * app.relations, 0);
  for (auto [cust_id, list_header] : customers.host_items(rt)) {
    (void)cust_id;
    List rl(static_cast<sim::Addr>(list_header));
    for (auto [key, price] : rl.host_items(rt)) {
      (void)price;
      uint32_t tab = static_cast<uint32_t>(key >> 32);
      uint64_t item = key & 0xffffffffull;
      if (tab >= kTables || item == 0 || item > app.relations) {
        res.validation_message = "corrupt reservation key";
        return res;
      }
      ++reserved_count[tab * app.relations + (item - 1)];
      ++live_reservations;
    }
  }
  for (uint32_t tab = 0; tab < kTables; ++tab) {
    for (auto [item, rec] : tables[tab].host_items(rt)) {
      uint64_t avail = m.peek(rec);
      uint64_t total = m.peek(rec + 16);
      uint64_t reserved = reserved_count[tab * app.relations + (item - 1)];
      if (avail + reserved != total) {
        res.validation_message =
            "instance conservation violated for item " + std::to_string(item);
        return res;
      }
      if (avail > total) {
        res.validation_message = "negative availability (wrapped)";
        return res;
      }
    }
  }
  uint64_t booked = m.peek(stats_words);
  uint64_t cancelled = m.peek(stats_words + 8);
  if (booked - cancelled != live_reservations) {
    res.validation_message = "booked - cancelled != live reservations";
    return res;
  }
  for (uint32_t tab = 0; tab < kTables; ++tab) {
    std::string why;
    if (!tables[tab].host_validate(rt, &why)) {
      res.validation_message = "table invariant: " + why;
      return res;
    }
  }
  res.valid = true;
  res.validation_message =
      "ok (" + std::to_string(booked) + " booked, " +
      std::to_string(cancelled) + " cancelled)";
  return res;
}

}  // namespace tsx::stamp
