#pragma once
// vacation (STAMP): an online travel-reservation system. The database is
// four red-black trees (cars, flights, rooms keyed by item id; customers
// keyed by customer id, each holding a reservation list). Client threads run
// coarse-grain transactional sessions: reservations, cancellations, and
// availability updates.
//
// The `optimized` flag applies the paper's §V-B changes cumulatively:
//   * merged tree lookups — the reservation query keeps the found node and
//     reuses it for price reads and availability updates (the baseline looks
//     the same item up two or three times);
//   * reservation-list insertions at the head instead of sorted order;
//   * a pre-faulting allocator (heap.prefault_on_refill), eliminating
//     in-transaction page faults (misc3 aborts).
// run_vacation sets heap.prefault_on_refill from `optimized`; the paper's
// Table V workload is "-u 100" (reservations only), `update_pct = 0`.

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct VacationConfig {
  uint32_t relations = 1024;     // items per table (paper scales to 64K)
  uint32_t customers = 256;
  uint32_t sessions_per_thread = 400;
  uint32_t queries_per_session = 4;
  uint32_t reserve_pct = 80;     // of sessions; the rest split cancel/update
  uint32_t update_pct = 0;       // "-u 100" in the paper's Table V setup
  bool optimized = false;        // §V-B code changes
  uint64_t seed = 5;
};

inline constexpr uint32_t kVacationSiteReserve = 1;
inline constexpr uint32_t kVacationSiteCancel = 2;
inline constexpr uint32_t kVacationSiteUpdate = 3;

AppResult run_vacation(const core::RunConfig& run_cfg,
                       const VacationConfig& app);

}  // namespace tsx::stamp
