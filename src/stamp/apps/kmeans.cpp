#include "stamp/apps/kmeans.h"

#include <vector>

#include "sim/rng.h"

namespace tsx::stamp {

namespace {

// Signed values are stored in two's complement words; features are
// non-negative so plain unsigned arithmetic is exact.
struct Layout {
  sim::Addr points;   // points * dims words (read-only)
  sim::Addr centers;  // clusters * dims words (read in assignment phase)
  sim::Addr acc;      // clusters * dims accumulator words (tx-updated)
  sim::Addr counts;   // clusters words (tx-updated)
  sim::Addr deltas;   // one word: membership changes this iteration
  sim::Addr members;  // points words: current assignment
};

uint64_t sq_dist(const std::vector<uint64_t>& a, size_t ai,
                 const std::vector<uint64_t>& b, size_t bi, uint32_t dims) {
  uint64_t s = 0;
  for (uint32_t d = 0; d < dims; ++d) {
    int64_t diff =
        static_cast<int64_t>(a[ai + d]) - static_cast<int64_t>(b[bi + d]);
    s += static_cast<uint64_t>(diff * diff);
  }
  return s;
}

}  // namespace

AppResult run_kmeans(const core::RunConfig& run_cfg, const KmeansConfig& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();
  uint32_t n = run_cfg.threads;
  const uint32_t P = app.points, D = app.dims, K = app.clusters;

  Layout L;
  L.points = heap.host_alloc(uint64_t(P) * D * 8, 64);
  L.centers = heap.host_alloc(uint64_t(K) * D * 8, 64);
  L.acc = heap.host_alloc(uint64_t(K) * D * 8, 64);
  L.counts = heap.host_alloc(uint64_t(K) * 8, 64);
  L.deltas = heap.host_alloc(64, 64);
  L.members = heap.host_alloc(uint64_t(P) * 8, 64);

  // Host-side dataset generation (deterministic).
  sim::Rng rng(app.seed);
  std::vector<uint64_t> points(uint64_t(P) * D);
  for (auto& v : points) v = rng.below(app.value_range);
  for (uint64_t i = 0; i < points.size(); ++i) m.poke(L.points + i * 8, points[i]);
  // Initial centers: the first K points (standard STAMP initialization).
  std::vector<uint64_t> centers(uint64_t(K) * D);
  for (uint32_t k = 0; k < K; ++k) {
    for (uint32_t d = 0; d < D; ++d) centers[uint64_t(k) * D + d] = points[uint64_t(k) * D + d];
  }
  for (uint64_t i = 0; i < centers.size(); ++i) m.poke(L.centers + i * 8, centers[i]);
  for (uint64_t p = 0; p < P; ++p) m.poke(L.members + p * 8, ~0ull);

  // ---- Host-side reference clustering (the validation oracle) ----
  std::vector<uint64_t> ref_centers = centers;
  std::vector<uint64_t> ref_members(P, ~0ull);
  for (uint32_t it = 0; it < app.iterations; ++it) {
    std::vector<uint64_t> acc(uint64_t(K) * D, 0);
    std::vector<uint64_t> cnt(K, 0);
    for (uint64_t p = 0; p < P; ++p) {
      uint64_t best = 0, best_d = ~0ull;
      for (uint32_t k = 0; k < K; ++k) {
        uint64_t d2 = sq_dist(points, p * D, ref_centers, uint64_t(k) * D, D);
        if (d2 < best_d) {
          best_d = d2;
          best = k;
        }
      }
      ref_members[p] = best;
      ++cnt[best];
      for (uint32_t d = 0; d < D; ++d) acc[best * D + d] += points[p * D + d];
    }
    for (uint32_t k = 0; k < K; ++k) {
      if (cnt[k] == 0) continue;
      for (uint32_t d = 0; d < D; ++d) {
        ref_centers[uint64_t(k) * D + d] = acc[uint64_t(k) * D + d] / cnt[k];
      }
    }
  }

  // ---- Simulated parallel clustering ----
  rt.run([&](core::TxCtx& ctx) {
    uint32_t t = ctx.id();
    uint64_t lo = uint64_t(P) * t / n;
    uint64_t hi = uint64_t(P) * (t + 1) / n;

    measured_region_begin(ctx);

    for (uint32_t it = 0; it < app.iterations; ++it) {
      // Zero the accumulators (partitioned by thread over clusters).
      for (uint64_t k = t; k < K; k += n) {
        for (uint32_t d = 0; d < D; ++d) ctx.store(L.acc + (k * D + d) * 8, 0);
        ctx.store(L.counts + k * 8, 0);
      }
      if (t == 0) ctx.store(L.deltas, 0);
      ctx.barrier();

      uint64_t local_delta = 0;
      for (uint64_t p = lo; p < hi; ++p) {
        // Assignment: reads of the point and all centers, non-transactional
        // (centers are stable within an iteration), plus distance compute.
        uint64_t best = 0, best_d = ~0ull;
        for (uint32_t k = 0; k < K; ++k) {
          uint64_t d2 = 0;
          for (uint32_t d = 0; d < D; ++d) {
            uint64_t pv = ctx.load(L.points + (p * D + d) * 8);
            uint64_t cv = ctx.load(L.centers + (uint64_t(k) * D + d) * 8);
            int64_t diff = static_cast<int64_t>(pv) - static_cast<int64_t>(cv);
            d2 += static_cast<uint64_t>(diff * diff);
          }
          ctx.compute(3 * D);
          if (d2 < best_d) {
            best_d = d2;
            best = k;
          }
        }
        uint64_t prev = ctx.load(L.members + p * 8);
        if (prev != best) ++local_delta;
        ctx.store(L.members + p * 8, best);

        // The STAMP transaction: update the chosen cluster's accumulators.
        ctx.transaction([&] {
          ctx.store(L.counts + best * 8, ctx.load(L.counts + best * 8) + 1);
          for (uint32_t d = 0; d < D; ++d) {
            sim::Addr a = L.acc + (best * D + d) * 8;
            ctx.store(a, ctx.load(a) + ctx.load(L.points + (p * D + d) * 8));
          }
        });
      }
      ctx.transaction([&] {
        ctx.store(L.deltas, ctx.load(L.deltas) + local_delta);
      });
      ctx.barrier();

      // Thread 0 recomputes centers from the accumulators.
      if (t == 0) {
        for (uint32_t k = 0; k < K; ++k) {
          uint64_t c = ctx.load(L.counts + uint64_t(k) * 8);
          if (c == 0) continue;
          for (uint32_t d = 0; d < D; ++d) {
            uint64_t s = ctx.load(L.acc + (uint64_t(k) * D + d) * 8);
            ctx.store(L.centers + (uint64_t(k) * D + d) * 8, s / c);
          }
        }
      }
      ctx.barrier();
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = uint64_t(P) * app.iterations;

  // ---- Validation against the host oracle ----
  res.valid = true;
  for (uint64_t i = 0; i < centers.size() && res.valid; ++i) {
    if (m.peek(L.centers + i * 8) != ref_centers[i]) {
      res.valid = false;
      res.validation_message = "center mismatch at word " + std::to_string(i);
    }
  }
  for (uint64_t p = 0; p < P && res.valid; ++p) {
    if (m.peek(L.members + p * 8) != ref_members[p]) {
      res.valid = false;
      res.validation_message = "membership mismatch at point " + std::to_string(p);
    }
  }
  if (res.valid) res.validation_message = "ok";
  return res;
}

}  // namespace tsx::stamp
