#include "stamp/apps/ssca2.h"

#include <vector>

#include "sim/rng.h"

namespace tsx::stamp {

// Vertex record (words): [0]=degree [1..max_degree]=targets.
AppResult run_ssca2(const core::RunConfig& run_cfg, const Ssca2Config& app) {
  core::TxRuntime rt(run_cfg);
  auto& heap = rt.heap();
  auto& m = rt.machine();
  uint32_t n = run_cfg.threads;
  const uint64_t V = app.vertices, E = app.edges;
  const uint64_t rec_words = 1 + app.max_degree;

  sim::Addr verts = heap.host_alloc(V * rec_words * 8, 64);
  for (uint64_t v = 0; v < V; ++v) m.poke(verts + v * rec_words * 8, 0);
  sim::Addr dropped_addr = heap.host_alloc(8, 64);
  m.poke(dropped_addr, 0);

  // Host-side edge list (deterministic). SSCA2 uses a power-lawish endpoint
  // distribution; squaring a uniform sample skews sources the same way.
  sim::Rng rng(app.seed);
  std::vector<std::pair<uint64_t, uint64_t>> edge_list(E);
  for (auto& [s, t] : edge_list) {
    uint64_t r = rng.below(V);
    s = (r * r) / V;  // skewed toward low vertex ids
    t = rng.below(V);
  }

  rt.run([&](core::TxCtx& ctx) {
    uint32_t t = ctx.id();
    uint64_t lo = E * t / n;
    uint64_t hi = E * (t + 1) / n;

    measured_region_begin(ctx);

    for (uint64_t e = lo; e < hi; ++e) {
      auto [src, dst] = edge_list[e];
      sim::Addr rec = verts + src * rec_words * 8;
      bool dropped = false;
      ctx.transaction([&] {
        dropped = false;
        sim::Word deg = ctx.load(rec);
        if (deg >= app.max_degree) {
          dropped = true;  // adjacency full: count it instead
          return;
        }
        ctx.store(rec + (1 + deg) * 8, dst);
        ctx.store(rec, deg + 1);
      });
      if (dropped) {
        ctx.transaction([&] {
          ctx.store(dropped_addr, ctx.load(dropped_addr) + 1);
        });
      }
      ctx.compute(40);  // per-edge preprocessing outside the transaction
    }
  });

  AppResult res;
  res.report = rt.report();
  res.work_items = E;

  // Validation: every edge landed exactly once (placed + dropped == E) and
  // each placed target matches some host edge with the right multiplicity.
  uint64_t placed = 0;
  std::vector<std::vector<uint64_t>> got(V);
  for (uint64_t v = 0; v < V; ++v) {
    uint64_t deg = m.peek(verts + v * rec_words * 8);
    if (deg > app.max_degree) {
      res.validation_message = "degree overflow at vertex " + std::to_string(v);
      return res;
    }
    placed += deg;
    for (uint64_t i = 0; i < deg; ++i) {
      got[v].push_back(m.peek(verts + (v * rec_words + 1 + i) * 8));
    }
  }
  uint64_t dropped = m.peek(dropped_addr);
  if (placed + dropped != E) {
    res.validation_message = "placed " + std::to_string(placed) + " + dropped " +
                             std::to_string(dropped) + " != " + std::to_string(E);
    return res;
  }
  // Multiset containment: sort both sides per vertex.
  std::vector<std::vector<uint64_t>> want(V);
  for (auto [s, t] : edge_list) want[s].push_back(t);
  uint64_t matched = 0;
  for (uint64_t v = 0; v < V; ++v) {
    std::sort(got[v].begin(), got[v].end());
    std::sort(want[v].begin(), want[v].end());
    // got[v] must be a sub-multiset of want[v].
    size_t i = 0;
    for (uint64_t target : got[v]) {
      while (i < want[v].size() && want[v][i] < target) ++i;
      if (i >= want[v].size() || want[v][i] != target) {
        res.validation_message = "unexpected edge at vertex " + std::to_string(v);
        return res;
      }
      ++i;
      ++matched;
    }
  }
  (void)matched;
  res.valid = true;
  res.validation_message = "ok";
  return res;
}

}  // namespace tsx::stamp
