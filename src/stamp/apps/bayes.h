#pragma once
// bayes (STAMP): Bayesian-network structure learning by hill climbing.
// Workers evaluate candidate edges (u, v): scoring a candidate reads both
// variables' sufficient-statistics arrays (kilobytes of transactional reads
// -> long transactions with large read sets and a large working set), and
// adopting an edge writes the adjacency entry and the score words. Paper
// characteristics: long transactions + large working set — RTM gains
// nothing from more threads, TinySTM wins overall; energy grows with
// threads even when performance doesn't.
//
// Scoring is a deterministic function of the (host-precomputed) statistics,
// and each candidate is evaluated exactly once, so the final network equals
// "all candidates with positive delta" regardless of interleaving — the
// validation oracle. (The paper notes bayes' *runtime* is order-dependent;
// its learned structure here is made order-independent to stay checkable.)

#include "stamp/apps/app.h"

namespace tsx::stamp {

struct BayesConfig {
  uint32_t variables = 24;
  uint32_t stats_words = 512;   // sufficient-statistics array per variable
  uint32_t candidates = 256;    // proposals, each a distinct (u, v) pair
  uint64_t seed = 8;
};

AppResult run_bayes(const core::RunConfig& run_cfg, const BayesConfig& app);

}  // namespace tsx::stamp
