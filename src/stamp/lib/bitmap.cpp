#include "stamp/lib/bitmap.h"

#include <bit>
#include <stdexcept>

namespace tsx::stamp {

Bitmap Bitmap::create_host(core::TxRuntime& rt, uint64_t bits) {
  auto& heap = rt.heap();
  auto& m = rt.machine();
  uint64_t words = (bits + 63) / 64;
  Addr data = heap.host_alloc(words * sim::kWordBytes, sim::kLineBytes);
  for (uint64_t w = 0; w < words; ++w) m.poke(data + w * 8, 0);
  Addr h = heap.host_alloc(kHeaderBytes);
  m.poke(h, bits);
  m.poke(h + 8, data);
  return Bitmap(h);
}

bool Bitmap::test(TxCtx& ctx, uint64_t bit) {
  if (bit >= ctx.load(bits_addr())) throw std::out_of_range("bitmap bit");
  Addr data = ctx.load(data_addr());
  Word w = ctx.load(data + (bit / 64) * 8);
  return (w >> (bit % 64)) & 1;
}

bool Bitmap::set(TxCtx& ctx, uint64_t bit) {
  if (bit >= ctx.load(bits_addr())) throw std::out_of_range("bitmap bit");
  Addr data = ctx.load(data_addr());
  Addr wa = data + (bit / 64) * 8;
  Word w = ctx.load(wa);
  Word mask = Word(1) << (bit % 64);
  if (w & mask) return false;
  ctx.store(wa, w | mask);
  return true;
}

void Bitmap::clear(TxCtx& ctx, uint64_t bit) {
  if (bit >= ctx.load(bits_addr())) throw std::out_of_range("bitmap bit");
  Addr data = ctx.load(data_addr());
  Addr wa = data + (bit / 64) * 8;
  ctx.store(wa, ctx.load(wa) & ~(Word(1) << (bit % 64)));
}

uint64_t Bitmap::host_count_set(core::TxRuntime& rt) const {
  auto& m = rt.machine();
  uint64_t bits = m.peek(bits_addr());
  Addr data = m.peek(data_addr());
  uint64_t count = 0;
  for (uint64_t w = 0; w < (bits + 63) / 64; ++w) {
    count += std::popcount(m.peek(data + w * 8));
  }
  return count;
}

}  // namespace tsx::stamp
