#pragma once
// Binary min-heap in simulated memory (STAMP's heap.c equivalent), used by
// yada's bad-triangle work queue.
//
// Header layout (words): [0]=capacity [1]=size [2]=array base
// Element i at array + i*8 (keys are the stored words; smaller = higher
// priority).

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class BinHeap {
 public:
  static constexpr uint64_t kHeaderBytes = 3 * sim::kWordBytes;

  explicit BinHeap(Addr header) : h_(header) {}

  static BinHeap create_host(core::TxRuntime& rt, uint64_t capacity);

  Addr header() const { return h_; }

  // False if full.
  bool push(TxCtx& ctx, Word key);
  // False if empty.
  bool pop_min(TxCtx& ctx, Word* key);
  Word size(TxCtx& ctx);

  void host_push(core::TxRuntime& rt, Word key);
  uint64_t host_size(core::TxRuntime& rt) const;
  // Heap-order invariant check for the property tests.
  bool host_validate(core::TxRuntime& rt) const;

 private:
  Addr cap_addr() const { return h_; }
  Addr size_addr() const { return h_ + 8; }
  Addr arr_addr() const { return h_ + 16; }

  Addr h_;
};

}  // namespace tsx::stamp
