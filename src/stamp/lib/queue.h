#pragma once
// STAMP-style circular-buffer queue in simulated memory.
//
// Layout (word offsets from base):
//   0: pop index   1: push index   2: capacity   3: elements base address
// Elements live in a separate allocation so the control line and the data
// don't false-share.
//
// The pop_cas() variant reproduces the paper's Table I CAS experiment: the
// modified STAMP queue_pop that claims the head slot with a single
// compare-and-swap on the pop index.

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class Queue {
 public:
  // Allocates a queue with space for `capacity` elements (host-side setup).
  static Queue create(core::TxRuntime& rt, uint64_t capacity);
  // Adopts an existing queue at `base`.
  explicit Queue(Addr base) : base_(base) {}

  Addr base() const { return base_; }

  // Host-side (costless) operations for setup/validation.
  void host_push(core::TxRuntime& rt, Word value);
  uint64_t host_size(core::TxRuntime& rt) const;

  // Simulated operations; run them inside ctx.transaction() for atomicity
  // under TM backends, or bare for the CAS/unsynchronized variants.
  bool push(TxCtx& ctx, Word value);          // false if full
  bool pop(TxCtx& ctx, Word* value);          // false if empty
  bool is_empty(TxCtx& ctx);

  // Lock-free pop using CAS on the pop index. Safe only when no concurrent
  // pushes wrap the buffer (the Table I workload drains a prefilled queue).
  bool pop_cas(TxCtx& ctx, Word* value);

 private:
  Addr pop_addr() const { return base_; }
  Addr push_addr() const { return base_ + 8; }
  Addr cap_addr() const { return base_ + 16; }
  Addr elems_addr() const { return base_ + 24; }

  Addr base_;
};

}  // namespace tsx::stamp
