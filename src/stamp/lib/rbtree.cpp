#include "stamp/lib/rbtree.h"

#include <string>
#include <vector>

namespace tsx::stamp {

namespace {
constexpr Word kRed = 1;
constexpr Word kBlack = 0;
}  // namespace

RbTree RbTree::create(TxCtx& ctx) {
  Addr h = ctx.malloc(kHeaderBytes);
  ctx.store(h, 0);
  ctx.store(h + 8, 0);
  return RbTree(h);
}

RbTree RbTree::create_host(core::TxRuntime& rt) {
  Addr h = rt.heap().host_alloc(kHeaderBytes);
  rt.machine().poke(h, 0);
  rt.machine().poke(h + 8, 0);
  return RbTree(h);
}

void RbTree::rotate_left(TxCtx& ctx, Addr x) {
  Addr y = ctx.load(right_a(x));
  Addr yl = ctx.load(left_a(y));
  ctx.store(right_a(x), yl);
  if (yl != 0) ctx.store(parent_a(yl), x);
  Addr xp = ctx.load(parent_a(x));
  ctx.store(parent_a(y), xp);
  if (xp == 0) {
    ctx.store(root_addr(), y);
  } else if (ctx.load(left_a(xp)) == x) {
    ctx.store(left_a(xp), y);
  } else {
    ctx.store(right_a(xp), y);
  }
  ctx.store(left_a(y), x);
  ctx.store(parent_a(x), y);
}

void RbTree::rotate_right(TxCtx& ctx, Addr x) {
  Addr y = ctx.load(left_a(x));
  Addr yr = ctx.load(right_a(y));
  ctx.store(left_a(x), yr);
  if (yr != 0) ctx.store(parent_a(yr), x);
  Addr xp = ctx.load(parent_a(x));
  ctx.store(parent_a(y), xp);
  if (xp == 0) {
    ctx.store(root_addr(), y);
  } else if (ctx.load(right_a(xp)) == x) {
    ctx.store(right_a(xp), y);
  } else {
    ctx.store(left_a(xp), y);
  }
  ctx.store(right_a(y), x);
  ctx.store(parent_a(x), y);
}

bool RbTree::insert(TxCtx& ctx, Word key, Word value) {
  Addr parent = 0;
  Addr cur = ctx.load(root_addr());
  while (cur != 0) {
    Word k = ctx.load(key_a(cur));
    if (key == k) return false;
    parent = cur;
    cur = key < k ? ctx.load(left_a(cur)) : ctx.load(right_a(cur));
  }
  Addr z = ctx.malloc(kNodeBytes);
  ctx.store(key_a(z), key);
  ctx.store(val_a(z), value);
  ctx.store(left_a(z), 0);
  ctx.store(right_a(z), 0);
  ctx.store(parent_a(z), parent);
  ctx.store(color_a(z), kRed);
  if (parent == 0) {
    ctx.store(root_addr(), z);
  } else if (key < ctx.load(key_a(parent))) {
    ctx.store(left_a(parent), z);
  } else {
    ctx.store(right_a(parent), z);
  }
  insert_fixup(ctx, z);
  ctx.store(size_addr(), ctx.load(size_addr()) + 1);
  return true;
}

void RbTree::insert_fixup(TxCtx& ctx, Addr z) {
  while (true) {
    Addr zp = ctx.load(parent_a(z));
    if (zp == 0 || !is_red(ctx, zp)) break;
    Addr zpp = ctx.load(parent_a(zp));  // grandparent exists: zp is red
    if (zp == ctx.load(left_a(zpp))) {
      Addr uncle = ctx.load(right_a(zpp));
      if (is_red(ctx, uncle)) {
        ctx.store(color_a(zp), kBlack);
        ctx.store(color_a(uncle), kBlack);
        ctx.store(color_a(zpp), kRed);
        z = zpp;
      } else {
        if (z == ctx.load(right_a(zp))) {
          z = zp;
          rotate_left(ctx, z);
          zp = ctx.load(parent_a(z));
          zpp = ctx.load(parent_a(zp));
        }
        ctx.store(color_a(zp), kBlack);
        ctx.store(color_a(zpp), kRed);
        rotate_right(ctx, zpp);
      }
    } else {
      Addr uncle = ctx.load(left_a(zpp));
      if (is_red(ctx, uncle)) {
        ctx.store(color_a(zp), kBlack);
        ctx.store(color_a(uncle), kBlack);
        ctx.store(color_a(zpp), kRed);
        z = zpp;
      } else {
        if (z == ctx.load(left_a(zp))) {
          z = zp;
          rotate_right(ctx, z);
          zp = ctx.load(parent_a(z));
          zpp = ctx.load(parent_a(zp));
        }
        ctx.store(color_a(zp), kBlack);
        ctx.store(color_a(zpp), kRed);
        rotate_left(ctx, zpp);
      }
    }
  }
  Addr root = ctx.load(root_addr());
  ctx.store(color_a(root), kBlack);
}

Addr RbTree::find_node(TxCtx& ctx, Word key) {
  Addr cur = ctx.load(root_addr());
  while (cur != 0) {
    Word k = ctx.load(key_a(cur));
    if (key == k) return cur;
    cur = key < k ? ctx.load(left_a(cur)) : ctx.load(right_a(cur));
  }
  return 0;
}

bool RbTree::find(TxCtx& ctx, Word key, Word* value) {
  Addr n = find_node(ctx, key);
  if (n == 0) return false;
  if (value) *value = ctx.load(val_a(n));
  return true;
}

Word RbTree::node_value(TxCtx& ctx, Addr node) { return ctx.load(val_a(node)); }
void RbTree::set_node_value(TxCtx& ctx, Addr node, Word value) {
  ctx.store(val_a(node), value);
}
Word RbTree::node_key(TxCtx& ctx, Addr node) { return ctx.load(key_a(node)); }

bool RbTree::update(TxCtx& ctx, Word key, Word value) {
  Addr n = find_node(ctx, key);
  if (n == 0) return false;
  ctx.store(val_a(n), value);
  return true;
}

Addr RbTree::lower_bound(TxCtx& ctx, Word key) {
  Addr cur = ctx.load(root_addr());
  Addr best = 0;
  while (cur != 0) {
    Word k = ctx.load(key_a(cur));
    if (k >= key) {
      best = cur;
      cur = ctx.load(left_a(cur));
    } else {
      cur = ctx.load(right_a(cur));
    }
  }
  return best;
}

Addr RbTree::min_node(TxCtx& ctx) {
  Addr root = ctx.load(root_addr());
  return root == 0 ? 0 : subtree_min(ctx, root);
}

Addr RbTree::subtree_min(TxCtx& ctx, Addr n) {
  Addr l = ctx.load(left_a(n));
  while (l != 0) {
    n = l;
    l = ctx.load(left_a(n));
  }
  return n;
}

Addr RbTree::successor(TxCtx& ctx, Addr node) {
  Addr r = ctx.load(right_a(node));
  if (r != 0) return subtree_min(ctx, r);
  Addr p = ctx.load(parent_a(node));
  while (p != 0 && node == ctx.load(right_a(p))) {
    node = p;
    p = ctx.load(parent_a(p));
  }
  return p;
}

void RbTree::transplant(TxCtx& ctx, Addr u, Addr v) {
  Addr up = ctx.load(parent_a(u));
  if (up == 0) {
    ctx.store(root_addr(), v);
  } else if (u == ctx.load(left_a(up))) {
    ctx.store(left_a(up), v);
  } else {
    ctx.store(right_a(up), v);
  }
  if (v != 0) ctx.store(parent_a(v), up);
}

bool RbTree::remove(TxCtx& ctx, Word key) {
  Addr z = find_node(ctx, key);
  if (z == 0) return false;

  Addr y = z;
  bool y_was_black = !is_red(ctx, y);
  Addr x = 0;
  Addr x_parent = 0;

  Addr zl = ctx.load(left_a(z));
  Addr zr = ctx.load(right_a(z));
  if (zl == 0) {
    x = zr;
    x_parent = ctx.load(parent_a(z));
    transplant(ctx, z, zr);
  } else if (zr == 0) {
    x = zl;
    x_parent = ctx.load(parent_a(z));
    transplant(ctx, z, zl);
  } else {
    y = subtree_min(ctx, zr);
    y_was_black = !is_red(ctx, y);
    x = ctx.load(right_a(y));
    if (ctx.load(parent_a(y)) == z) {
      x_parent = y;
      if (x != 0) ctx.store(parent_a(x), y);
    } else {
      x_parent = ctx.load(parent_a(y));
      transplant(ctx, y, x);
      ctx.store(right_a(y), zr);
      ctx.store(parent_a(zr), y);
    }
    transplant(ctx, z, y);
    Addr zl2 = ctx.load(left_a(z));
    ctx.store(left_a(y), zl2);
    ctx.store(parent_a(zl2), y);
    ctx.store(color_a(y), ctx.load(color_a(z)));
  }
  if (y_was_black) delete_fixup(ctx, x, x_parent);
  ctx.store(size_addr(), ctx.load(size_addr()) - 1);
  ctx.free(z);
  return true;
}

void RbTree::delete_fixup(TxCtx& ctx, Addr x, Addr x_parent) {
  while (x != ctx.load(root_addr()) && !is_red(ctx, x)) {
    if (x_parent == 0) break;
    if (x == ctx.load(left_a(x_parent))) {
      Addr w = ctx.load(right_a(x_parent));
      if (is_red(ctx, w)) {
        ctx.store(color_a(w), kBlack);
        ctx.store(color_a(x_parent), kRed);
        rotate_left(ctx, x_parent);
        w = ctx.load(right_a(x_parent));
      }
      if (!is_red(ctx, ctx.load(left_a(w))) &&
          !is_red(ctx, ctx.load(right_a(w)))) {
        ctx.store(color_a(w), kRed);
        x = x_parent;
        x_parent = ctx.load(parent_a(x));
      } else {
        if (!is_red(ctx, ctx.load(right_a(w)))) {
          Addr wl = ctx.load(left_a(w));
          if (wl != 0) ctx.store(color_a(wl), kBlack);
          ctx.store(color_a(w), kRed);
          rotate_right(ctx, w);
          w = ctx.load(right_a(x_parent));
        }
        ctx.store(color_a(w), ctx.load(color_a(x_parent)));
        ctx.store(color_a(x_parent), kBlack);
        Addr wr = ctx.load(right_a(w));
        if (wr != 0) ctx.store(color_a(wr), kBlack);
        rotate_left(ctx, x_parent);
        x = ctx.load(root_addr());
        break;
      }
    } else {
      Addr w = ctx.load(left_a(x_parent));
      if (is_red(ctx, w)) {
        ctx.store(color_a(w), kBlack);
        ctx.store(color_a(x_parent), kRed);
        rotate_right(ctx, x_parent);
        w = ctx.load(left_a(x_parent));
      }
      if (!is_red(ctx, ctx.load(left_a(w))) &&
          !is_red(ctx, ctx.load(right_a(w)))) {
        ctx.store(color_a(w), kRed);
        x = x_parent;
        x_parent = ctx.load(parent_a(x));
      } else {
        if (!is_red(ctx, ctx.load(left_a(w)))) {
          Addr wr = ctx.load(right_a(w));
          if (wr != 0) ctx.store(color_a(wr), kBlack);
          ctx.store(color_a(w), kRed);
          rotate_left(ctx, w);
          w = ctx.load(left_a(x_parent));
        }
        ctx.store(color_a(w), ctx.load(color_a(x_parent)));
        ctx.store(color_a(x_parent), kBlack);
        Addr wl = ctx.load(left_a(w));
        if (wl != 0) ctx.store(color_a(wl), kBlack);
        rotate_right(ctx, x_parent);
        x = ctx.load(root_addr());
        break;
      }
    }
  }
  if (x != 0) ctx.store(color_a(x), kBlack);
}

Word RbTree::size(TxCtx& ctx) { return ctx.load(size_addr()); }

uint64_t RbTree::host_size(core::TxRuntime& rt) const {
  return rt.machine().peek(size_addr());
}

std::vector<std::pair<Word, Word>> RbTree::host_items(
    core::TxRuntime& rt) const {
  auto& m = rt.machine();
  std::vector<std::pair<Word, Word>> out;
  // Iterative in-order traversal.
  std::vector<Addr> stack;
  Addr cur = m.peek(root_addr());
  while (cur != 0 || !stack.empty()) {
    while (cur != 0) {
      stack.push_back(cur);
      cur = m.peek(left_a(cur));
    }
    cur = stack.back();
    stack.pop_back();
    out.emplace_back(m.peek(key_a(cur)), m.peek(val_a(cur)));
    cur = m.peek(right_a(cur));
  }
  return out;
}

bool RbTree::host_validate(core::TxRuntime& rt, std::string* why) const {
  auto& m = rt.machine();
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  Addr root = m.peek(root_addr());
  if (root == 0) {
    if (m.peek(size_addr()) != 0) return fail("empty tree with nonzero size");
    return true;
  }
  if (m.peek(color_a(root)) != kBlack) return fail("red root");
  if (m.peek(parent_a(root)) != 0) return fail("root has a parent");

  // Recursive check of ordering, parent links, red-red rule, and equal
  // black height on every root-to-nil path. Returns -1 on violation.
  uint64_t count = 0;
  std::string reason;
  auto check = [&](auto&& self, Addr n) -> int {
    if (n == 0) return 1;  // nil is black
    ++count;
    bool red = m.peek(color_a(n)) == kRed;
    Addr l = m.peek(left_a(n));
    Addr r = m.peek(right_a(n));
    Word k = m.peek(key_a(n));
    if (red) {
      if ((l != 0 && m.peek(color_a(l)) == kRed) ||
          (r != 0 && m.peek(color_a(r)) == kRed)) {
        reason = "red node with red child";
        return -1;
      }
    }
    if (l != 0) {
      if (m.peek(parent_a(l)) != n) { reason = "broken parent link"; return -1; }
      if (m.peek(key_a(l)) >= k) { reason = "left key >= parent key"; return -1; }
    }
    if (r != 0) {
      if (m.peek(parent_a(r)) != n) { reason = "broken parent link"; return -1; }
      if (m.peek(key_a(r)) <= k) { reason = "right key <= parent key"; return -1; }
    }
    int bl = self(self, l);
    if (bl < 0) return -1;
    int br = self(self, r);
    if (br < 0) return -1;
    if (bl != br) { reason = "black-height mismatch"; return -1; }
    return bl + (red ? 0 : 1);
  };
  if (check(check, root) < 0) return fail(reason);
  if (count != m.peek(size_addr())) return fail("size counter mismatch");
  return true;
}

}  // namespace tsx::stamp
