#pragma once
// Red-black tree in simulated memory (STAMP's rbtree.c equivalent): the map
// type behind intruder's flow table and vacation's four database tables.
//
// Node layout (words): [0]=key [1]=value [2]=left [3]=right [4]=parent
//                      [5]=color (1 = red, 0 = black); address 0 is nil.
// Header layout:       [0]=root [1]=size
//
// The implementation is iterative CLRS insert/delete with parent pointers,
// so transactional read/write sets grow with tree depth exactly as STAMP's
// does. Keys are unique: insert returns false on duplicates.

#include <cstdint>

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class RbTree {
 public:
  static constexpr uint64_t kHeaderBytes = 2 * sim::kWordBytes;
  static constexpr uint64_t kNodeBytes = 6 * sim::kWordBytes;

  explicit RbTree(Addr header) : h_(header) {}

  static RbTree create(TxCtx& ctx);
  static RbTree create_host(core::TxRuntime& rt);

  Addr header() const { return h_; }

  // Inserts key -> value; false if the key already exists (no update).
  bool insert(TxCtx& ctx, Word key, Word value);
  // Finds the value for key.
  bool find(TxCtx& ctx, Word key, Word* value);
  // Returns the node handle for key (0 if absent): lets callers re-access a
  // found element without a second lookup — the §V-B vacation optimization.
  Addr find_node(TxCtx& ctx, Word key);
  Word node_value(TxCtx& ctx, Addr node);
  void set_node_value(TxCtx& ctx, Addr node, Word value);
  Word node_key(TxCtx& ctx, Addr node);

  // Updates the value for key; false if absent.
  bool update(TxCtx& ctx, Word key, Word value);
  // Removes key; false if absent. The node is freed via the heap.
  bool remove(TxCtx& ctx, Word key);

  // Smallest key >= key; returns 0-node if none.
  Addr lower_bound(TxCtx& ctx, Word key);
  // Minimum node (0 if empty).
  Addr min_node(TxCtx& ctx);
  // In-order successor of a node (0 at the end).
  Addr successor(TxCtx& ctx, Addr node);

  Word size(TxCtx& ctx);

  // ---- Host-side (no simulated cost) ----
  uint64_t host_size(core::TxRuntime& rt) const;
  // Validates every red-black invariant; returns false (and sets *why) on
  // violation. Used by the property tests after random operation mixes.
  bool host_validate(core::TxRuntime& rt, std::string* why = nullptr) const;
  // In-order key/value dump.
  std::vector<std::pair<Word, Word>> host_items(core::TxRuntime& rt) const;

 private:
  Addr root_addr() const { return h_; }
  Addr size_addr() const { return h_ + 8; }

  static Addr key_a(Addr n) { return n; }
  static Addr val_a(Addr n) { return n + 8; }
  static Addr left_a(Addr n) { return n + 16; }
  static Addr right_a(Addr n) { return n + 24; }
  static Addr parent_a(Addr n) { return n + 32; }
  static Addr color_a(Addr n) { return n + 40; }

  // Color of a (possibly nil) node: nil is black.
  static bool is_red(TxCtx& ctx, Addr n) {
    return n != 0 && ctx.load(color_a(n)) == 1;
  }

  void rotate_left(TxCtx& ctx, Addr x);
  void rotate_right(TxCtx& ctx, Addr x);
  void insert_fixup(TxCtx& ctx, Addr z);
  void delete_fixup(TxCtx& ctx, Addr x, Addr x_parent);
  void transplant(TxCtx& ctx, Addr u, Addr v);
  Addr subtree_min(TxCtx& ctx, Addr n);

  Addr h_;
};

}  // namespace tsx::stamp
