#include "stamp/lib/hashtable.h"

#include <stdexcept>

namespace tsx::stamp {

HashTable HashTable::create_host(core::TxRuntime& rt, uint64_t buckets) {
  if (buckets == 0 || (buckets & (buckets - 1)) != 0) {
    throw std::invalid_argument("bucket count must be a power of two");
  }
  auto& heap = rt.heap();
  auto& m = rt.machine();
  Addr arr = heap.host_alloc(buckets * sim::kWordBytes, sim::kLineBytes);
  for (uint64_t b = 0; b < buckets; ++b) m.poke(arr + b * 8, 0);
  Addr h = heap.host_alloc(kHeaderBytes);
  m.poke(h, buckets);
  m.poke(h + 8, 0);
  m.poke(h + 16, arr);
  return HashTable(h);
}

bool HashTable::insert(TxCtx& ctx, Word key, Word value) {
  Word nb = ctx.load(nbuckets_addr());
  Addr arr = ctx.load(buckets_addr());
  Addr bucket = arr + (hash(key) & (nb - 1)) * 8;
  Addr cur = ctx.load(bucket);
  while (cur != 0) {
    if (ctx.load(key_a(cur)) == key) return false;
    cur = ctx.load(next_a(cur));
  }
  Addr node = ctx.malloc(kNodeBytes);
  ctx.store(key_a(node), key);
  ctx.store(val_a(node), value);
  ctx.store(next_a(node), ctx.load(bucket));
  ctx.store(bucket, node);
  ctx.store(size_addr(), ctx.load(size_addr()) + 1);
  return true;
}

bool HashTable::find(TxCtx& ctx, Word key, Word* value) {
  Word nb = ctx.load(nbuckets_addr());
  Addr arr = ctx.load(buckets_addr());
  Addr cur = ctx.load(arr + (hash(key) & (nb - 1)) * 8);
  while (cur != 0) {
    if (ctx.load(key_a(cur)) == key) {
      if (value) *value = ctx.load(val_a(cur));
      return true;
    }
    cur = ctx.load(next_a(cur));
  }
  return false;
}

bool HashTable::remove(TxCtx& ctx, Word key) {
  Word nb = ctx.load(nbuckets_addr());
  Addr arr = ctx.load(buckets_addr());
  Addr bucket = arr + (hash(key) & (nb - 1)) * 8;
  Addr prev = 0;
  Addr cur = ctx.load(bucket);
  while (cur != 0) {
    if (ctx.load(key_a(cur)) == key) {
      Addr next = ctx.load(next_a(cur));
      if (prev == 0) {
        ctx.store(bucket, next);
      } else {
        ctx.store(next_a(prev), next);
      }
      ctx.store(size_addr(), ctx.load(size_addr()) - 1);
      ctx.free(cur);
      return true;
    }
    prev = cur;
    cur = ctx.load(next_a(cur));
  }
  return false;
}

Word HashTable::size(TxCtx& ctx) { return ctx.load(size_addr()); }

std::vector<std::pair<Word, Word>> HashTable::host_items(
    core::TxRuntime& rt) const {
  auto& m = rt.machine();
  std::vector<std::pair<Word, Word>> out;
  Word nb = m.peek(nbuckets_addr());
  Addr arr = m.peek(buckets_addr());
  for (Word b = 0; b < nb; ++b) {
    Addr cur = m.peek(arr + b * 8);
    while (cur != 0) {
      out.emplace_back(m.peek(key_a(cur)), m.peek(val_a(cur)));
      cur = m.peek(next_a(cur));
    }
  }
  return out;
}

}  // namespace tsx::stamp
