#pragma once
// Bit vector in simulated memory (STAMP's bitmap.c equivalent), used by
// ssca2 and genome for claimed-element tracking.
//
// Header layout (words): [0]=bit count [1]=data base address

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class Bitmap {
 public:
  static constexpr uint64_t kHeaderBytes = 2 * sim::kWordBytes;

  explicit Bitmap(Addr header) : h_(header) {}

  static Bitmap create_host(core::TxRuntime& rt, uint64_t bits);

  Addr header() const { return h_; }

  bool test(TxCtx& ctx, uint64_t bit);
  // Sets the bit; returns false if it was already set (test-and-set).
  bool set(TxCtx& ctx, uint64_t bit);
  void clear(TxCtx& ctx, uint64_t bit);
  Word num_bits(TxCtx& ctx) { return ctx.load(h_); }

  uint64_t host_count_set(core::TxRuntime& rt) const;

 private:
  Addr bits_addr() const { return h_; }
  Addr data_addr() const { return h_ + 8; }

  Addr h_;
};

}  // namespace tsx::stamp
