#include "stamp/lib/list.h"

#include <algorithm>

namespace tsx::stamp {

List List::create(TxCtx& ctx) {
  Addr h = ctx.malloc(kHeaderBytes);
  ctx.store(h, 0);
  ctx.store(h + 8, 0);
  return List(h);
}

List List::create_host(core::TxRuntime& rt) {
  Addr h = rt.heap().host_alloc(kHeaderBytes);
  rt.machine().poke(h, 0);
  rt.machine().poke(h + 8, 0);
  return List(h);
}

void List::insert_sorted(TxCtx& ctx, Word key, Word value) {
  Addr node = ctx.malloc(kNodeBytes);
  ctx.store(key_addr(node), key);
  ctx.store(val_addr(node), value);

  Addr prev = 0;
  Addr cur = ctx.load(head_addr());
  while (cur != 0 && ctx.load(key_addr(cur)) < key) {
    prev = cur;
    cur = ctx.load(next_addr(cur));
  }
  ctx.store(next_addr(node), cur);
  if (prev == 0) {
    ctx.store(head_addr(), node);
  } else {
    ctx.store(next_addr(prev), node);
  }
  ctx.store(size_addr(), ctx.load(size_addr()) + 1);
}

void List::push_front(TxCtx& ctx, Word key, Word value) {
  Addr node = ctx.malloc(kNodeBytes);
  ctx.store(key_addr(node), key);
  ctx.store(val_addr(node), value);
  ctx.store(next_addr(node), ctx.load(head_addr()));
  ctx.store(head_addr(), node);
  ctx.store(size_addr(), ctx.load(size_addr()) + 1);
}

bool List::find(TxCtx& ctx, Word key, Word* value) {
  Addr cur = ctx.load(head_addr());
  while (cur != 0) {
    Word k = ctx.load(key_addr(cur));
    if (k == key) {
      if (value) *value = ctx.load(val_addr(cur));
      return true;
    }
    cur = ctx.load(next_addr(cur));
  }
  return false;
}

bool List::remove(TxCtx& ctx, Word key) {
  Addr prev = 0;
  Addr cur = ctx.load(head_addr());
  while (cur != 0) {
    Word k = ctx.load(key_addr(cur));
    if (k == key) {
      Addr next = ctx.load(next_addr(cur));
      if (prev == 0) {
        ctx.store(head_addr(), next);
      } else {
        ctx.store(next_addr(prev), next);
      }
      ctx.store(size_addr(), ctx.load(size_addr()) - 1);
      ctx.free(cur);
      return true;
    }
    prev = cur;
    cur = ctx.load(next_addr(cur));
  }
  return false;
}

Word List::size(TxCtx& ctx) { return ctx.load(size_addr()); }

bool List::empty(TxCtx& ctx) { return ctx.load(head_addr()) == 0; }

bool List::pop_front(TxCtx& ctx, Word* key, Word* value) {
  Addr head = ctx.load(head_addr());
  if (head == 0) return false;
  if (key) *key = ctx.load(key_addr(head));
  if (value) *value = ctx.load(val_addr(head));
  ctx.store(head_addr(), ctx.load(next_addr(head)));
  ctx.store(size_addr(), ctx.load(size_addr()) - 1);
  ctx.free(head);
  return true;
}

void List::clear(TxCtx& ctx) {
  Addr cur = ctx.load(head_addr());
  while (cur != 0) {
    Addr next = ctx.load(next_addr(cur));
    ctx.free(cur);
    cur = next;
  }
  ctx.store(head_addr(), 0);
  ctx.store(size_addr(), 0);
}

std::vector<std::pair<Word, Word>> List::host_items(core::TxRuntime& rt) const {
  auto& m = rt.machine();
  std::vector<std::pair<Word, Word>> out;
  Addr cur = m.peek(head_addr());
  while (cur != 0) {
    out.emplace_back(m.peek(key_addr(cur)), m.peek(val_addr(cur)));
    cur = m.peek(next_addr(cur));
  }
  return out;
}

void List::host_sort(core::TxRuntime& rt) {
  auto& m = rt.machine();
  // Collect nodes, sort by key, relink.
  std::vector<Addr> nodes;
  Addr cur = m.peek(head_addr());
  while (cur != 0) {
    nodes.push_back(cur);
    cur = m.peek(next_addr(cur));
  }
  std::stable_sort(nodes.begin(), nodes.end(), [&](Addr a, Addr b) {
    return m.peek(key_addr(a)) < m.peek(key_addr(b));
  });
  Addr prev = 0;
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    m.poke(next_addr(*it), prev);
    prev = *it;
  }
  m.poke(head_addr(), prev);
}

}  // namespace tsx::stamp
