#pragma once
// Chained hash table in simulated memory (STAMP's hashtable.c equivalent),
// used by genome's segment de-duplication phase.
//
// Header layout (words): [0]=bucket count [1]=size [2]=buckets base address
// Each bucket is the head word of a chain of list nodes
// (node: [0]=key [1]=value [2]=next).

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class HashTable {
 public:
  static constexpr uint64_t kHeaderBytes = 3 * sim::kWordBytes;
  static constexpr uint64_t kNodeBytes = 3 * sim::kWordBytes;

  explicit HashTable(Addr header) : h_(header) {}

  // `buckets` must be a power of two.
  static HashTable create_host(core::TxRuntime& rt, uint64_t buckets);

  Addr header() const { return h_; }

  // Inserts key -> value; returns false (without modification) if present.
  bool insert(TxCtx& ctx, Word key, Word value);
  bool find(TxCtx& ctx, Word key, Word* value);
  bool remove(TxCtx& ctx, Word key);
  Word size(TxCtx& ctx);

  // Chain iteration (for phase-style consumers that walk the table after a
  // barrier; the reads are plain unless inside a transaction).
  Word bucket_count(TxCtx& ctx) { return ctx.load(nbuckets_addr()); }
  Addr bucket_head(TxCtx& ctx, Word b) {
    return ctx.load(ctx.load(buckets_addr()) + b * 8);
  }
  Word node_key(TxCtx& ctx, Addr node) { return ctx.load(key_a(node)); }
  Word node_value(TxCtx& ctx, Addr node) { return ctx.load(val_a(node)); }
  Addr node_next(TxCtx& ctx, Addr node) { return ctx.load(next_a(node)); }

  // Host-side iteration for validation.
  std::vector<std::pair<Word, Word>> host_items(core::TxRuntime& rt) const;

 private:
  Addr nbuckets_addr() const { return h_; }
  Addr size_addr() const { return h_ + 8; }
  Addr buckets_addr() const { return h_ + 16; }

  static Addr key_a(Addr n) { return n; }
  static Addr val_a(Addr n) { return n + 8; }
  static Addr next_a(Addr n) { return n + 16; }

  static uint64_t hash(Word key) {
    uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
  }

  Addr h_;
};

}  // namespace tsx::stamp
