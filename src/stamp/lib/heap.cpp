#include "stamp/lib/heap.h"

namespace tsx::stamp {

BinHeap BinHeap::create_host(core::TxRuntime& rt, uint64_t capacity) {
  auto& heap = rt.heap();
  auto& m = rt.machine();
  Addr arr = heap.host_alloc(capacity * sim::kWordBytes, sim::kLineBytes);
  Addr h = heap.host_alloc(kHeaderBytes);
  m.poke(h, capacity);
  m.poke(h + 8, 0);
  m.poke(h + 16, arr);
  return BinHeap(h);
}

bool BinHeap::push(TxCtx& ctx, Word key) {
  Word cap = ctx.load(cap_addr());
  Word n = ctx.load(size_addr());
  if (n >= cap) return false;
  Addr arr = ctx.load(arr_addr());
  // Sift up.
  Word i = n;
  ctx.store(arr + i * 8, key);
  while (i > 0) {
    Word parent = (i - 1) / 2;
    Word pk = ctx.load(arr + parent * 8);
    if (pk <= key) break;
    ctx.store(arr + i * 8, pk);
    ctx.store(arr + parent * 8, key);
    i = parent;
  }
  ctx.store(size_addr(), n + 1);
  return true;
}

bool BinHeap::pop_min(TxCtx& ctx, Word* key) {
  Word n = ctx.load(size_addr());
  if (n == 0) return false;
  Addr arr = ctx.load(arr_addr());
  *key = ctx.load(arr);
  Word last = ctx.load(arr + (n - 1) * 8);
  n -= 1;
  ctx.store(size_addr(), n);
  if (n == 0) return true;
  // Sift the last element down from the root.
  Word i = 0;
  ctx.store(arr, last);
  for (;;) {
    Word l = 2 * i + 1, r = 2 * i + 2;
    Word smallest = i;
    Word sk = last;
    if (l < n) {
      Word lk = ctx.load(arr + l * 8);
      if (lk < sk) {
        smallest = l;
        sk = lk;
      }
    }
    if (r < n) {
      Word rk = ctx.load(arr + r * 8);
      if (rk < sk) {
        smallest = r;
        sk = rk;
      }
    }
    if (smallest == i) break;
    ctx.store(arr + i * 8, sk);
    ctx.store(arr + smallest * 8, last);
    i = smallest;
  }
  return true;
}

Word BinHeap::size(TxCtx& ctx) { return ctx.load(size_addr()); }

void BinHeap::host_push(core::TxRuntime& rt, Word key) {
  auto& m = rt.machine();
  Word cap = m.peek(cap_addr());
  Word n = m.peek(size_addr());
  if (n >= cap) throw std::runtime_error("host_push on full heap");
  Addr arr = m.peek(arr_addr());
  Word i = n;
  m.poke(arr + i * 8, key);
  while (i > 0) {
    Word parent = (i - 1) / 2;
    Word pk = m.peek(arr + parent * 8);
    if (pk <= key) break;
    m.poke(arr + i * 8, pk);
    m.poke(arr + parent * 8, key);
    i = parent;
  }
  m.poke(size_addr(), n + 1);
}

uint64_t BinHeap::host_size(core::TxRuntime& rt) const {
  return rt.machine().peek(size_addr());
}

bool BinHeap::host_validate(core::TxRuntime& rt) const {
  auto& m = rt.machine();
  Word n = m.peek(size_addr());
  Addr arr = m.peek(arr_addr());
  for (Word i = 1; i < n; ++i) {
    if (m.peek(arr + ((i - 1) / 2) * 8) > m.peek(arr + i * 8)) return false;
  }
  return true;
}

}  // namespace tsx::stamp
