#include "stamp/lib/queue.h"

namespace tsx::stamp {

Queue Queue::create(core::TxRuntime& rt, uint64_t capacity) {
  auto& heap = rt.heap();
  // +1 slot: a ring distinguishing full from empty.
  Addr elems = heap.host_alloc((capacity + 1) * sim::kWordBytes, sim::kLineBytes);
  Addr base = heap.host_alloc(4 * sim::kWordBytes, sim::kLineBytes);
  auto& m = rt.machine();
  m.poke(base + 0, 0);             // pop
  m.poke(base + 8, 0);             // push
  m.poke(base + 16, capacity + 1); // ring size
  m.poke(base + 24, elems);
  return Queue(base);
}

void Queue::host_push(core::TxRuntime& rt, Word value) {
  auto& m = rt.machine();
  Word cap = m.peek(cap_addr());
  Word push = m.peek(push_addr());
  Word pop = m.peek(pop_addr());
  Word next = (push + 1) % cap;
  if (next == pop) throw std::runtime_error("host_push on full queue");
  Addr elems = m.peek(elems_addr());
  m.poke(elems + push * sim::kWordBytes, value);
  m.poke(push_addr(), next);
}

uint64_t Queue::host_size(core::TxRuntime& rt) const {
  auto& m = rt.machine();
  Word cap = m.peek(cap_addr());
  Word push = m.peek(push_addr());
  Word pop = m.peek(pop_addr());
  return (push + cap - pop) % cap;
}

bool Queue::push(TxCtx& ctx, Word value) {
  Word cap = ctx.load(cap_addr());
  Word push = ctx.load(push_addr());
  Word next = (push + 1) % cap;
  if (next == ctx.load(pop_addr())) return false;
  Addr elems = ctx.load(elems_addr());
  ctx.store(elems + push * sim::kWordBytes, value);
  ctx.store(push_addr(), next);
  return true;
}

bool Queue::pop(TxCtx& ctx, Word* value) {
  Word pop = ctx.load(pop_addr());
  if (pop == ctx.load(push_addr())) return false;
  Word cap = ctx.load(cap_addr());
  Addr elems = ctx.load(elems_addr());
  *value = ctx.load(elems + pop * sim::kWordBytes);
  ctx.store(pop_addr(), (pop + 1) % cap);
  return true;
}

bool Queue::is_empty(TxCtx& ctx) {
  return ctx.load(pop_addr()) == ctx.load(push_addr());
}

bool Queue::pop_cas(TxCtx& ctx, Word* value) {
  for (;;) {
    Word pop = ctx.load(pop_addr());
    if (pop == ctx.load(push_addr())) return false;
    Word cap = ctx.load(cap_addr());
    Addr elems = ctx.load(elems_addr());
    Word v = ctx.load(elems + pop * sim::kWordBytes);
    if (ctx.cas(pop_addr(), pop, (pop + 1) % cap)) {
      *value = v;
      return true;
    }
    ctx.pause();
  }
}

}  // namespace tsx::stamp
