#pragma once
// Singly-linked list in simulated memory, STAMP-style: used for intruder's
// per-flow fragment lists and vacation's customer reservation lists.
//
// Node layout (words): [0]=key [1]=value [2]=next
// Header layout:       [0]=head node (0 = empty) [1]=size
//
// Two insertion disciplines matter for the paper's §V case studies:
//   * insert_sorted: the baseline code keeps lists sorted, so every insert
//     walks O(n) nodes — a long transactional read chain.
//   * push_front: the optimized code prepends in O(1) and sorts only when
//     the list is consumed (sort_host, outside any transaction).

#include <vector>

#include "core/runtime.h"

namespace tsx::stamp {

using core::TxCtx;
using sim::Addr;
using sim::Word;

class List {
 public:
  static constexpr uint64_t kHeaderBytes = 2 * sim::kWordBytes;
  static constexpr uint64_t kNodeBytes = 3 * sim::kWordBytes;

  explicit List(Addr header) : h_(header) {}

  // Allocates and zero-initializes a header inside the current transaction
  // scope (or outside one, for setup code running on a fiber).
  static List create(TxCtx& ctx);
  static List create_host(core::TxRuntime& rt);

  Addr header() const { return h_; }

  // Ascending-by-key insertion (walks the chain transactionally).
  void insert_sorted(TxCtx& ctx, Word key, Word value);
  // O(1) prepend (the §V-A/§V-B optimization).
  void push_front(TxCtx& ctx, Word key, Word value);

  // Finds the first node with `key`; returns false if absent.
  bool find(TxCtx& ctx, Word key, Word* value);
  // Removes the first node with `key`; returns false if absent. The node is
  // freed through the (transaction-scope-aware) heap.
  bool remove(TxCtx& ctx, Word key);

  Word size(TxCtx& ctx);
  bool empty(TxCtx& ctx);

  // Pops the head node; returns false when empty.
  bool pop_front(TxCtx& ctx, Word* key, Word* value);

  // Frees every node (transactional cost).
  void clear(TxCtx& ctx);

  // Host-side helpers (no simulated cost) for setup and validation.
  std::vector<std::pair<Word, Word>> host_items(core::TxRuntime& rt) const;
  // Sorts links in place by key, host-side: models the optimized intruder's
  // "sort once before reassembly, outside the measured transaction" step
  // when invoked from non-transactional code paths.
  void host_sort(core::TxRuntime& rt);

 private:
  Addr head_addr() const { return h_; }
  Addr size_addr() const { return h_ + 8; }
  static Addr key_addr(Addr n) { return n; }
  static Addr val_addr(Addr n) { return n + 8; }
  static Addr next_addr(Addr n) { return n + 16; }

  Addr h_;
};

}  // namespace tsx::stamp
