#pragma once
// Aligned-column text tables for bench output, plus CSV emission so the
// same rows can be post-processed (EXPERIMENTS.md records both).

#include <iosfwd>
#include <string>
#include <vector>

namespace tsx::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision, "-" for NaN.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(int64_t v);

  // RFC-4180 quoting for a single cell; returns the cell unchanged when no
  // quoting is needed.
  static std::string csv_escape(const std::string& cell);

  // Renders with column alignment and a rule under the header.
  void print(std::ostream& os) const;
  // Comma-separated, RFC-4180-quoted where a cell needs it.
  void print_csv(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsx::util
