#pragma once
// Deterministic open-addressed flat hash containers for the simulator's hot
// paths (DESIGN.md §10). Three containers, all keyed on 64-bit integers:
//
//   FlatTable<V>  u64 -> V map: linear probing, tombstoned erase, power-of-
//                 two growth. Replaces unordered_map on paths where per-node
//                 allocation and pointer-chasing dominate (backing-store page
//                 table, sim-heap block directory).
//   FlatSet      u64 set with O(1) epoch-based clear() and insertion-order
//                 iteration (a compact element vector doubles as the
//                 iteration surface, so clearing and walking cost O(size),
//                 never O(capacity)). Replaces unordered_set for
//                 transactional read/write line sets.
//   WriteIndex   Addr -> u32 position map, small-size-optimized: a linear
//                 inline array below kInlineCap entries, spilling to an
//                 epoch-cleared open-addressed table above it. Replaces the
//                 STM write-set RAW-lookup unordered_map (TinySTM/TL2),
//                 whose typical population is a handful of entries.
//
// Determinism: layout and iteration order are a pure function of the
// insert/erase sequence (fixed hash, fixed growth schedule, no allocator or
// libc++ variance), which tests/test_flat_table.cpp pins. Keys hash through
// the splitmix64 finalizer so dense line/page numbers spread over the table.

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace tsx::util {

// splitmix64 finalizer: deterministic, well-mixed, cheap.
inline constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Open-addressed u64 -> V map with linear probing and tombstones.
template <typename V>
class FlatTable {
 public:
  FlatTable() = default;

  V* find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    size_t i = mix64(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return nullptr;
      if (s.state == kFull && s.key == key) return &s.value;
      i = (i + 1) & mask_;
    }
  }
  const V* find(uint64_t key) const {
    return const_cast<FlatTable*>(this)->find(key);
  }

  // Inserts a default-constructed value if absent.
  V& operator[](uint64_t key) { return *try_emplace(key).first; }

  // Returns {slot, inserted}.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(uint64_t key, Args&&... args) {
    if (used_ + 1 > capacity_limit()) grow();
    size_t i = mix64(key) & mask_;
    size_t tomb = kNoSlot;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) {
        Slot& dst = tomb == kNoSlot ? s : slots_[tomb];
        if (tomb == kNoSlot) ++used_;  // tombstone reuse keeps `used_`
        dst.key = key;
        dst.value = V(std::forward<Args>(args)...);
        dst.state = kFull;
        ++size_;
        return {&dst.value, true};
      }
      if (s.state == kTombstone && tomb == kNoSlot) tomb = i;
      if (s.state == kFull && s.key == key) return {&s.value, false};
      i = (i + 1) & mask_;
    }
  }

  bool erase(uint64_t key) {
    if (slots_.empty()) return false;
    size_t i = mix64(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return false;
      if (s.state == kFull && s.key == key) {
        s.value = V();
        s.state = kTombstone;
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = used_ = 0;
  }

  // Visits entries in slot order (deterministic for a given op sequence).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == kFull) fn(s.key, s.value);
    }
  }

  void reserve(size_t n) {
    while (capacity_limit() < n) grow();
  }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr size_t kNoSlot = ~size_t{0};

  struct Slot {
    uint64_t key = 0;
    V value{};
    uint8_t state = kEmpty;
  };

  // Max load factor 11/16 (~0.69); growth rehashes away all tombstones.
  size_t capacity_limit() const { return slots_.size() / 16 * 11; }

  void grow() {
    size_t ncap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(ncap);  // value-init; works for move-only V
    mask_ = ncap - 1;
    size_ = used_ = 0;
    for (Slot& s : old) {
      if (s.state != kFull) continue;
      size_t i = mix64(s.key) & mask_;
      while (slots_[i].state == kFull) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      slots_[i].state = kFull;
      ++size_;
      ++used_;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;  // kFull slots
  size_t used_ = 0;  // kFull + kTombstone (probe-length control)
};

// u64 set with O(1) clear and insertion-order iteration. No erase: the
// simulator clears transactional line sets wholesale (commit/abort), never
// element-wise. The element vector keeps iteration and clearing O(size).
class FlatSet {
 public:
  FlatSet() = default;

  // Returns true if the key was newly inserted.
  bool insert(uint64_t key) {
    if (items_.size() + 1 > slots_.size() / 16 * 11) grow();
    size_t i = mix64(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.key = key;
        s.epoch = epoch_;
        items_.push_back(key);
        return true;
      }
      if (s.key == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool contains(uint64_t key) const {
    if (slots_.empty()) return false;
    size_t i = mix64(key) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return false;
      if (s.key == key) return true;
      i = (i + 1) & mask_;
    }
  }
  size_t count(uint64_t key) const { return contains(key) ? 1 : 0; }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void clear() {
    items_.clear();
    if (++epoch_ == 0) {  // epoch wraparound: hard-reset the stamps
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  // Insertion-order iteration.
  std::vector<uint64_t>::const_iterator begin() const { return items_.begin(); }
  std::vector<uint64_t>::const_iterator end() const { return items_.end(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t epoch = 0;  // slot live iff epoch == epoch_
  };

  void grow() {
    size_t ncap = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(ncap, Slot{});
    mask_ = ncap - 1;
    epoch_ = 1;
    for (uint64_t key : items_) {
      size_t i = mix64(key) & mask_;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
      slots_[i].key = key;
      slots_[i].epoch = epoch_;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  uint32_t epoch_ = 1;  // 0 marks never-used slots
  std::vector<uint64_t> items_;
};

// Small-size-optimized Addr -> u32 index map for STM write sets: linear scan
// over an inline array up to kInlineCap entries, then an epoch-cleared
// open-addressed table. Typical transactions write a handful of distinct
// words, so the spill path is rare; clear() is O(1) in both modes.
class WriteIndex {
 public:
  static constexpr uint32_t kInlineCap = 16;

  uint32_t* find(uint64_t key) {
    if (!spilled_) {
      for (uint32_t i = 0; i < count_; ++i) {
        if (inline_keys_[i] == key) return &inline_vals_[i];
      }
      return nullptr;
    }
    size_t i = mix64(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask_;
    }
  }

  // Key must not be present (callers find() first).
  void insert(uint64_t key, uint32_t value) {
    if (!spilled_) {
      if (count_ < kInlineCap) {
        inline_keys_[count_] = key;
        inline_vals_[count_] = value;
        ++count_;
        return;
      }
      spill();
    }
    if (count_ + 1 > slots_.size() / 16 * 11) grow();
    place(key, value);
    ++count_;
  }

  void clear() {
    count_ = 0;
    spilled_ = false;
    if (!slots_.empty() && ++epoch_ == 0) {
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  size_t size() const { return count_; }
  bool spilled() const { return spilled_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t value = 0;
    uint32_t epoch = 0;
  };

  void place(uint64_t key, uint32_t value) {
    size_t i = mix64(key) & mask_;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
    slots_[i].key = key;
    slots_[i].value = value;
    slots_[i].epoch = epoch_;
  }

  void spill() {
    spilled_ = true;
    if (slots_.empty()) {
      slots_.assign(64, Slot{});
      mask_ = 63;
      epoch_ = 1;
    } else {
      clear_slots();
    }
    for (uint32_t i = 0; i < count_; ++i) {
      place(inline_keys_[i], inline_vals_[i]);
    }
  }

  void clear_slots() {
    if (++epoch_ == 0) {
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    uint32_t old_epoch = epoch_;
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    epoch_ = 1;
    for (Slot& s : old) {
      if (s.epoch == old_epoch) place(s.key, s.value);
    }
  }

  uint64_t inline_keys_[kInlineCap];
  uint32_t inline_vals_[kInlineCap];
  uint32_t count_ = 0;
  bool spilled_ = false;

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  uint32_t epoch_ = 1;
};

}  // namespace tsx::util
