#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace tsx::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

// RFC-4180 quoting: cells containing a comma, quote or newline are wrapped
// in double quotes with embedded quotes doubled; all other cells are emitted
// raw, byte-identical to the unquoted format.
std::string Table::csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace tsx::util
