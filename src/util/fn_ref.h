#pragma once
// Non-owning callable reference (a function_ref) for the simulator's
// dispatch seams (DESIGN.md §10).
//
// std::function on a per-transaction or per-fill path costs a possible heap
// allocation at construction (captures beyond the SBO budget) and an
// indirect call through a type-erased manager. FnRef is two words — a
// context pointer and a trampoline — constructed for free from any callable
// lvalue/rvalue at the call site. It does NOT extend the callable's
// lifetime: only pass it down synchronous call chains (transaction bodies,
// eviction callbacks) where the referent outlives the call. Seams that
// *store* callables (TraceHooks/ObsHooks, AbortFn) keep std::function.

#include <memory>
#include <type_traits>
#include <utility>

namespace tsx::util {

template <typename Sig>
class FnRef;

template <typename R, typename... Args>
class FnRef<R(Args...)> {
 public:
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, FnRef>, int> = 0>
  FnRef(F&& f) noexcept  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace tsx::util
