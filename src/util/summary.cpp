#include "util/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsx::util {

static void require_nonempty(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("summary of empty sample");
}

double mean(const std::vector<double>& xs) {
  require_nonempty(xs);
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(const std::vector<double>& xs) {
  require_nonempty(xs);
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double geomean(const std::vector<double>& xs) {
  require_nonempty(xs);
  double s = 0;
  for (double x : xs) {
    if (x <= 0) throw std::invalid_argument("geomean of non-positive value");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  require_nonempty(xs);
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return (n % 2) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double minimum(const std::vector<double>& xs) {
  require_nonempty(xs);
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(const std::vector<double>& xs) {
  require_nonempty(xs);
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace tsx::util
