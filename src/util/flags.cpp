#include "util/flags.h"

#include <stdexcept>

namespace tsx::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

int64_t Flags::get_int(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  try {
    size_t pos = 0;
    int64_t v = std::stoll(it->second, &pos, 0);
    if (pos != it->second.size()) throw std::invalid_argument(name);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  try {
    size_t pos = 0;
    double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(name);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + v +
                              "'");
}

bool Flags::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace tsx::util
