#include "util/flags.h"

#include <stdexcept>

namespace tsx::util {

namespace {

bool parses_as_int(const std::string& s, int64_t* out) {
  try {
    size_t pos = 0;
    int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parses_as_double(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      tokens_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    if (entries_.count(name)) {
      throw std::invalid_argument("duplicate flag --" + name);
    }
    Entry e;
    if (eq != std::string::npos) {
      e.value = body.substr(eq + 1);
      e.has_eq_value = true;
      e.resolved = true;
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // Candidate space-separated value: the typed lookup decides whether
      // it is this flag's value or a positional argument.
      e.candidate = static_cast<int>(tokens_.size());
    }
    entries_[name] = e;
  }
  claimed_.assign(tokens_.size(), false);
}

const Flags::Entry* Flags::find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  consumed_[name] = true;
  return &it->second;
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  const Entry* ce = find(name);
  if (!ce) return def;
  Entry& e = entries_[name];
  if (!e.resolved) {
    // Any token is a valid string, so a candidate always becomes the value.
    if (e.candidate >= 0) {
      e.value = tokens_[e.candidate];
      claimed_[e.candidate] = true;
    }
    e.resolved = true;
  }
  return e.value;
}

int64_t Flags::get_int(const std::string& name, int64_t def) const {
  const Entry* ce = find(name);
  if (!ce) return def;
  Entry& e = entries_[name];
  int64_t v = 0;
  if (!e.resolved) {
    if (e.candidate >= 0) {
      if (!parses_as_int(tokens_[e.candidate], &v)) {
        throw std::invalid_argument("flag --" + name +
                                    " expects an integer, got '" +
                                    tokens_[e.candidate] + "'");
      }
      e.value = tokens_[e.candidate];
      claimed_[e.candidate] = true;
    }
    e.resolved = true;
  }
  if (!parses_as_int(e.value, &v)) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                e.value + "'");
  }
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  const Entry* ce = find(name);
  if (!ce) return def;
  Entry& e = entries_[name];
  double v = 0;
  if (!e.resolved) {
    if (e.candidate >= 0) {
      if (!parses_as_double(tokens_[e.candidate], &v)) {
        throw std::invalid_argument("flag --" + name +
                                    " expects a number, got '" +
                                    tokens_[e.candidate] + "'");
      }
      e.value = tokens_[e.candidate];
      claimed_[e.candidate] = true;
    }
    e.resolved = true;
  }
  if (!parses_as_double(e.value, &v)) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                e.value + "'");
  }
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const Entry* ce = find(name);
  if (!ce) return def;
  Entry& e = entries_[name];
  // Booleans never take a space-separated value: "--csv out.txt" means the
  // bare boolean --csv followed by the positional "out.txt". Explicit
  // boolean values use the "=" form ("--csv=false").
  if (!e.resolved) e.resolved = true;
  const std::string& v = e.value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + v +
                              "'");
}

bool Flags::has(const std::string& name) const { return find(name) != nullptr; }

std::vector<std::string> Flags::positional() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (!claimed_[i]) out.push_back(tokens_[i]);
  }
  return out;
}

std::vector<std::string> Flags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    (void)v;
    if (!consumed_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace tsx::util
