#pragma once
// Minimal JSON emission helpers shared by the run-manifest writer
// (src/harness) and the Chrome-trace exporter (src/obs).

#include <string>
#include <string_view>

namespace tsx::util {

// RFC 8259 string escaping: quotes, backslash, and all control characters
// (as \uXXXX or the short forms where they exist). Does not add the
// surrounding quotes.
std::string json_escape(std::string_view s);

// Formats a double with a fixed number of fractional digits, so JSON output
// is byte-stable regardless of ambient stream state or locale.
std::string json_fixed(double v, int precision);

}  // namespace tsx::util
