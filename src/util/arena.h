#pragma once
// Bump-pointer arena for host-side simulator metadata (DESIGN.md §10).
//
// Allocation is a pointer bump; freeing is wholesale (reset() rewinds to the
// first block, keeping the memory for reuse). Intended for trivially
// destructible payloads whose lifetime matches a simulator phase: the obs
// trace-event ring (allocated once at sink capacity) and mem::SimHeap's
// chunked free-list nodes (live as long as the heap). Destructors are never
// run — the arena only hands out raw storage.
//
// Determinism note: the arena affects *host* memory layout only; simulated
// addresses and stats never depend on where arena blocks land.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace tsx::util {

class Arena {
 public:
  explicit Arena(size_t block_bytes = 64 * 1024) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    size_t pos = cur_block_ < blocks_.size() ? align_up(pos_, align) : 0;
    if (cur_block_ >= blocks_.size() || pos + bytes > blocks_[cur_block_].cap) {
      next_block(bytes + align);
      pos = align_up(pos_, align);
    }
    std::byte* p = blocks_[cur_block_].data.get() + pos;
    pos_ = pos + bytes;
    bytes_used_ = std::max(bytes_used_, total_before_cur_ + pos_);
    return p;
  }

  // Uninitialized storage for n objects of T; T must be trivially
  // destructible (the arena never runs destructors).
  template <typename T>
  T* alloc_array(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destroyed element-wise");
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destroyed element-wise");
    return ::new (alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Rewind to empty, keeping every block for reuse. Previously returned
  // pointers are invalidated (storage is recycled, not freed).
  void reset() {
    cur_block_ = 0;
    pos_ = 0;
    total_before_cur_ = 0;
  }

  size_t blocks() const { return blocks_.size(); }
  // High-water mark of bytes handed out (diagnostics / tests).
  size_t bytes_used() const { return bytes_used_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t cap;
  };

  static size_t align_up(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

  void next_block(size_t min_bytes) {
    // Advance past the current block (if any), then skip recycled blocks
    // too small for this request; grow a fresh block if none fits.
    if (cur_block_ < blocks_.size()) {
      total_before_cur_ += pos_;
      ++cur_block_;
    }
    while (cur_block_ < blocks_.size() &&
           blocks_[cur_block_].cap < min_bytes) {
      ++cur_block_;
    }
    if (cur_block_ >= blocks_.size()) {
      size_t cap = std::max(block_bytes_, min_bytes);
      blocks_.push_back(Block{std::make_unique<std::byte[]>(cap), cap});
      cur_block_ = blocks_.size() - 1;
    }
    pos_ = 0;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t cur_block_ = 0;
  size_t pos_ = 0;
  size_t total_before_cur_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace tsx::util
