#include "util/warn_once.h"

#include <iostream>
#include <mutex>
#include <unordered_set>

namespace tsx::util {

namespace {

struct WarnRegistry {
  std::mutex mu;
  std::unordered_set<std::string> keys;
};

WarnRegistry& registry() {
  static WarnRegistry r;
  return r;
}

}  // namespace

bool warn_once(const std::string& key, const std::string& message) {
  WarnRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.keys.insert(key).second) return false;
  // Emitted under the lock: two racing first-time warnings (distinct keys
  // from concurrent sweep cells) must not interleave their characters.
  std::cerr << message << "\n";
  return true;
}

bool warned(const std::string& key) {
  WarnRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.keys.count(key) != 0;
}

size_t warn_once_reset_for_tests() {
  WarnRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  size_t n = r.keys.size();
  r.keys.clear();
  return n;
}

}  // namespace tsx::util
