#pragma once
// Once-per-run stderr warnings. Bench sweeps shard cells across host
// threads (--jobs N); a warning emitted from inside a cell would repeat
// once per shard and make parallel stderr diverge from the serial run.
// Routing such warnings through warn_once() dedupes them against one
// process-wide key set, so stderr carries exactly one line per distinct
// condition regardless of --jobs or which worker thread hits it first.

#include <string>

namespace tsx::util {

// Emits "message\n" to stderr the first time `key` is seen in this process;
// later calls with the same key are dropped. Thread-safe (the emission
// happens under the registry lock, so concurrent first calls cannot
// interleave their output). Returns true iff this call emitted.
bool warn_once(const std::string& key, const std::string& message);

// True once `key` has been registered (with or without an emission having
// been observed by the caller).
bool warned(const std::string& key);

// Test seam: forgets every key so a test can observe a fresh first
// emission. Returns how many keys were registered.
size_t warn_once_reset_for_tests();

}  // namespace tsx::util
