#include "util/json.h"

#include <cstdio>

namespace tsx::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace tsx::util
