#pragma once
// Minimal command-line flag parser used by the bench drivers and examples.
//
// Supports "--name=value", "--name value" and bare "--name" (boolean true).
// A space-separated token is taken as the flag's value only when it parses
// as the requested type; booleans never consume a following token (use
// "--name=false" for an explicit boolean value). Giving the same flag twice
// is a hard error — sweep scripts must not be able to mask a typo with a
// silent last-wins overwrite. Unrecognized flags are collected so drivers
// can reject typos.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsx::util {

class Flags {
 public:
  // Throws std::invalid_argument on a duplicate flag.
  Flags(int argc, char** argv);

  // Value lookups with defaults. get_* throw std::invalid_argument if the
  // value is present but cannot be parsed as the requested type. The first
  // typed lookup of a flag decides whether the following bare token is its
  // value or a positional argument.
  std::string get_string(const std::string& name, std::string def) const;
  int64_t get_int(const std::string& name, int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  // Positional (non-flag) arguments in order of appearance, excluding
  // tokens consumed as space-separated flag values. Call after all flag
  // lookups — typed lookups are what claim candidate tokens.
  std::vector<std::string> positional() const;

  // Names that were present on the command line but never queried.
  // Drivers call this after reading all flags to catch typos.
  std::vector<std::string> unconsumed() const;

 private:
  struct Entry {
    std::string value = "true";  // "--name=value" value, or resolved value
    bool has_eq_value = false;   // came from the "=" form
    int candidate = -1;          // index into tokens_ of a possible value
    bool resolved = false;       // a typed lookup has decided `candidate`
  };

  const Entry* find(const std::string& name) const;

  // All non-flag tokens in order; claimed_[i] is set once a typed lookup
  // consumes tokens_[i] as a flag value.
  std::vector<std::string> tokens_;
  mutable std::vector<bool> claimed_;
  mutable std::map<std::string, Entry> entries_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace tsx::util
