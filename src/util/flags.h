#pragma once
// Minimal command-line flag parser used by the bench drivers and examples.
//
// Supports "--name=value", "--name value" and bare "--name" (boolean true).
// Unrecognized flags are collected so drivers can reject typos.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsx::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Value lookups with defaults. get_* throw std::invalid_argument if the
  // value is present but cannot be parsed as the requested type.
  std::string get_string(const std::string& name, std::string def) const;
  int64_t get_int(const std::string& name, int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were present on the command line but never queried.
  // Drivers call this after reading all flags to catch typos.
  std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace tsx::util
