#pragma once
// Small summary-statistics helpers for repeated experiment runs.

#include <cstddef>
#include <vector>

namespace tsx::util {

double mean(const std::vector<double>& xs);
double stdev(const std::vector<double>& xs);  // sample stdev; 0 for n < 2
double geomean(const std::vector<double>& xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double minimum(const std::vector<double>& xs);
double maximum(const std::vector<double>& xs);

}  // namespace tsx::util
